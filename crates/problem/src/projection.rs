//! Tensor projections: how iteration-space tiles map to data-space footprints.


/// One coordinate of a tensor's data space, expressed over iteration dims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjTerm {
    /// The coordinate equals one iteration dimension (by index into the
    /// problem's dimension list). A tile of extent `t` in that dimension
    /// touches `t` points of this coordinate.
    Single(usize),
    /// A sliding-window coordinate `base + window` (stride 1), as in the
    /// input tensor of a convolution where the input row is `y + r`. A tile
    /// of extents `(ty, tr)` touches `ty + tr - 1` points.
    Window {
        /// The sliding (output) dimension index.
        base: usize,
        /// The window (filter) dimension index.
        window: usize,
    },
}

impl ProjTerm {
    /// Number of data points this coordinate spans for the given per-dim tile
    /// extents (`tile[d]` = extent of dim `d` in the tile).
    pub fn extent(&self, tile: &[u64]) -> u64 {
        match *self {
            ProjTerm::Single(d) => tile[d],
            ProjTerm::Window { base, window } => tile[base] + tile[window] - 1,
        }
    }

    /// Iteration dimensions referenced by this coordinate.
    pub fn dims(&self) -> impl Iterator<Item = usize> {
        let (a, b) = match *self {
            ProjTerm::Single(d) => (d, None),
            ProjTerm::Window { base, window } => (base, Some(window)),
        };
        std::iter::once(a).chain(b)
    }
}

/// A full projection: the ordered list of data-space coordinates of a tensor.
///
/// The data-space footprint of an iteration-space tile is the product of the
/// per-coordinate extents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Projection {
    terms: Vec<ProjTerm>,
}

impl Projection {
    /// Creates a projection from its coordinate terms.
    pub fn new(terms: Vec<ProjTerm>) -> Self {
        Projection { terms }
    }

    /// The coordinate terms.
    pub fn terms(&self) -> &[ProjTerm] {
        &self.terms
    }

    /// Data-space footprint (number of elements) of a tile with the given
    /// per-dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is shorter than the largest referenced dim index.
    pub fn footprint(&self, tile: &[u64]) -> u64 {
        self.terms.iter().map(|t| t.extent(tile)).product()
    }

    /// Same as [`Projection::footprint`] but in `f64`, for very large tiles
    /// where the product may overflow `u64` (e.g. whole-tensor DRAM
    /// footprints of batch GEMMs).
    pub fn footprint_f64(&self, tile: &[u64]) -> f64 {
        self.terms.iter().map(|t| t.extent(tile) as f64).product()
    }

    /// Sorted, deduplicated list of iteration dimensions this tensor depends
    /// on. A loop over any *other* dimension reuses the tensor's data.
    pub fn relevant_dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.terms.iter().flat_map(|t| t.dims()).collect();
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    /// Whether iterating dimension `d` changes which data this tensor's tile
    /// covers.
    pub fn depends_on(&self, d: usize) -> bool {
        self.terms.iter().any(|t| t.dims().any(|x| x == d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_input() -> Projection {
        // Input[B, C, Y+R, X+S] with dim order (B,K,C,Y,X,R,S) = (0..7)
        Projection::new(vec![
            ProjTerm::Single(0),
            ProjTerm::Single(2),
            ProjTerm::Window { base: 3, window: 5 },
            ProjTerm::Window { base: 4, window: 6 },
        ])
    }

    #[test]
    fn window_extent_is_halo_inclusive() {
        let tile = [2, 9, 4, 7, 7, 3, 3]; // B=2, C=4, Y=7,R=3 -> 9 rows
        assert_eq!(conv_input().footprint(&tile), 2 * 4 * 9 * 9);
    }

    #[test]
    fn unit_tile_footprint_is_one() {
        let tile = [1u64; 7];
        assert_eq!(conv_input().footprint(&tile), 1);
    }

    #[test]
    fn relevant_dims_sorted_unique() {
        assert_eq!(conv_input().relevant_dims(), vec![0, 2, 3, 4, 5, 6]);
        assert!(conv_input().depends_on(5));
        assert!(!conv_input().depends_on(1));
    }

    #[test]
    fn f64_footprint_matches_u64_when_small() {
        let tile = [2, 9, 4, 7, 7, 3, 3];
        let p = conv_input();
        assert_eq!(p.footprint(&tile) as f64, p.footprint_f64(&tile));
    }
}
