//! Model zoo: per-layer workloads for the DNN models evaluated in the paper
//! (§4.1): ResNet, VGG16, MnasNet, MobileNetV2, and BERT-large, plus the
//! individually named workloads of Table 1.
//!
//! Layer shapes follow the published model definitions with batch size 16
//! (the batch used throughout the paper's Table 1). Strided layers are
//! represented by their output spatial sizes (the cost model assumes stride
//! 1 inside a tile; the halo approximation is second-order for the mapping
//! comparisons the paper makes).

use crate::{Problem, };

/// Batch size used by all zoo workloads (paper Table 1).
pub const BATCH: u64 = 16;

/// `Resnet Conv_3` from Table 1: `(B,K,C,Y,X,R,S) = (16,128,128,28,28,3,3)`.
pub fn resnet_conv3() -> Problem {
    Problem::conv2d("Resnet Conv_3", BATCH, 128, 128, 28, 28, 3, 3)
}

/// `Resnet Conv_4` from Table 1: `(16,256,256,14,14,3,3)`.
pub fn resnet_conv4() -> Problem {
    Problem::conv2d("Resnet Conv_4", BATCH, 256, 256, 14, 14, 3, 3)
}

/// `Inception Conv_2` from Table 1: `(16,192,192,27,27,5,5)`.
pub fn inception_conv2() -> Problem {
    Problem::conv2d("Inception Conv_2", BATCH, 192, 192, 27, 27, 5, 5)
}

/// `Bert-large KQV` from Table 1: `(B,M,K,N) = (16,1024,1024,512)` — the
/// key/query/value projections.
pub fn bert_kqv() -> Problem {
    Problem::gemm("Bert-large KQV", BATCH, 1024, 1024, 512)
}

/// `Bert-large Attn`: the attention score operation, heads folded into the
/// batch (16 heads × head-dim 64, sequence length 512).
pub fn bert_attn() -> Problem {
    Problem::gemm("Bert-large Attn", BATCH, 512, 64, 512)
}

/// `Bert-large FC`: the feed-forward expansion at the end of each attention
/// block (hidden 1024 → 4096 over a 512-token sequence).
pub fn bert_fc() -> Problem {
    Problem::gemm("Bert-large FC", BATCH, 4096, 1024, 512)
}

/// The 13 convolution layers of VGG16 (batch 16). VGG is the paper's example
/// of a highly *regular* hand-designed network: consecutive layers share most
/// dimensions, which is what makes warm-start-by-previous-layer work well.
pub fn vgg16() -> Vec<Problem> {
    let spec: &[(u64, u64, u64)] = &[
        // (K, C, spatial) per conv layer
        (64, 3, 224),
        (64, 64, 224),
        (128, 64, 112),
        (128, 128, 112),
        (256, 128, 56),
        (256, 256, 56),
        (256, 256, 56),
        (512, 256, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(k, c, hw))| {
            Problem::conv2d(format!("VGG16 Conv_{}", i + 1), BATCH, k, c, hw, hw, 3, 3)
        })
        .collect()
}

/// Unique convolution layers of ResNet-50 (batch 16), one per distinct shape
/// in network order. Repeated residual blocks are deduplicated, matching how
/// MSE papers count per-layer search problems.
pub fn resnet50() -> Vec<Problem> {
    let mut layers = Vec::new();
    let mut push = |name: String, k: u64, c: u64, hw: u64, r: u64| {
        layers.push(Problem::conv2d(name, BATCH, k, c, hw, hw, r, r));
    };
    push("Resnet50 Conv1".into(), 64, 3, 112, 7);
    // Stage conv2_x (56x56): 1x1/64, 3x3/64, 1x1/256
    push("Resnet50 Conv2_a".into(), 64, 64, 56, 1);
    push("Resnet50 Conv2_b".into(), 64, 64, 56, 3);
    push("Resnet50 Conv2_c".into(), 256, 64, 56, 1);
    push("Resnet50 Conv2_d".into(), 64, 256, 56, 1);
    // Stage conv3_x (28x28): 1x1/128, 3x3/128, 1x1/512
    push("Resnet50 Conv3_a".into(), 128, 256, 28, 1);
    push("Resnet50 Conv3_b".into(), 128, 128, 28, 3);
    push("Resnet50 Conv3_c".into(), 512, 128, 28, 1);
    push("Resnet50 Conv3_d".into(), 128, 512, 28, 1);
    // Stage conv4_x (14x14): 1x1/256, 3x3/256, 1x1/1024
    push("Resnet50 Conv4_a".into(), 256, 512, 14, 1);
    push("Resnet50 Conv4_b".into(), 256, 256, 14, 3);
    push("Resnet50 Conv4_c".into(), 1024, 256, 14, 1);
    push("Resnet50 Conv4_d".into(), 256, 1024, 14, 1);
    // Stage conv5_x (7x7): 1x1/512, 3x3/512, 1x1/2048
    push("Resnet50 Conv5_a".into(), 512, 1024, 7, 1);
    push("Resnet50 Conv5_b".into(), 512, 512, 7, 3);
    push("Resnet50 Conv5_c".into(), 2048, 512, 7, 1);
    push("Resnet50 Conv5_d".into(), 512, 2048, 7, 1);
    layers
}

/// Representative inverted-residual layers of MobileNetV2 (batch 16):
/// pointwise expansion, depthwise filter, pointwise projection per stage.
pub fn mobilenet_v2() -> Vec<Problem> {
    let mut layers = Vec::new();
    layers.push(Problem::conv2d("MobilenetV2 Conv1", BATCH, 32, 3, 112, 112, 3, 3));
    // (c_in, expansion, c_out, spatial) per representative bottleneck
    let blocks: &[(u64, u64, u64, u64)] = &[
        (16, 6, 24, 56),
        (24, 6, 32, 28),
        (32, 6, 64, 14),
        (64, 6, 96, 14),
        (96, 6, 160, 7),
        (160, 6, 320, 7),
    ];
    for (i, &(cin, e, cout, hw)) in blocks.iter().enumerate() {
        let hidden = cin * e;
        layers.push(Problem::pointwise_conv2d(
            format!("MobilenetV2 B{}_expand", i + 1),
            BATCH,
            hidden,
            cin,
            hw,
            hw,
        ));
        layers.push(Problem::depthwise_conv2d(
            format!("MobilenetV2 B{}_dw", i + 1),
            BATCH,
            hidden,
            hw,
            hw,
            3,
            3,
        ));
        layers.push(Problem::pointwise_conv2d(
            format!("MobilenetV2 B{}_project", i + 1),
            BATCH,
            cout,
            hidden,
            hw,
            hw,
        ));
    }
    layers.push(Problem::pointwise_conv2d("MobilenetV2 Head", BATCH, 1280, 320, 7, 7));
    layers
}

/// Representative layers of MnasNet-A1 (batch 16). MnasNet comes from neural
/// architecture search and has *irregular* channel counts (24, 40, 80, 112,
/// 160, ...) and mixed 3x3/5x5 depthwise kernels — the paper's example of a
/// network where warm-start-by-similarity beats warm-start-by-previous-layer
/// (Fig. 9) and warm-start speedups are smallest (Fig. 11).
pub fn mnasnet() -> Vec<Problem> {
    let mut layers = Vec::new();
    layers.push(Problem::conv2d("Mnasnet Conv1", BATCH, 32, 3, 112, 112, 3, 3));
    // (c_in, expansion, c_out, kernel, spatial)
    let blocks: &[(u64, u64, u64, u64, u64)] = &[
        (16, 6, 24, 3, 56),
        (24, 3, 40, 5, 28),
        (40, 6, 80, 3, 14),
        (80, 6, 112, 3, 14),
        (112, 6, 160, 5, 7),
        (160, 6, 320, 3, 7),
    ];
    for (i, &(cin, e, cout, ker, hw)) in blocks.iter().enumerate() {
        let hidden = cin * e;
        layers.push(Problem::pointwise_conv2d(
            format!("Mnasnet B{}_expand", i + 1),
            BATCH,
            hidden,
            cin,
            hw,
            hw,
        ));
        layers.push(Problem::depthwise_conv2d(
            format!("Mnasnet B{}_dw", i + 1),
            BATCH,
            hidden,
            hw,
            hw,
            ker,
            ker,
        ));
        layers.push(Problem::pointwise_conv2d(
            format!("Mnasnet B{}_project", i + 1),
            BATCH,
            cout,
            hidden,
            hw,
            hw,
        ));
    }
    layers
}

/// The BERT-large operator set used in Table 3.
pub fn bert_large() -> Vec<Problem> {
    vec![bert_kqv(), bert_attn(), bert_fc()]
}

/// Every zoo model keyed by name, for CLI harnesses.
pub fn model(name: &str) -> Option<Vec<Problem>> {
    match name {
        "vgg16" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        "mobilenet_v2" => Some(mobilenet_v2()),
        "mnasnet" => Some(mnasnet()),
        "bert_large" => Some(bert_large()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimName;

    #[test]
    fn table1_shapes_match_paper() {
        let p = resnet_conv3();
        assert_eq!(p.bounds(), vec![16, 128, 128, 28, 28, 3, 3]);
        let p = resnet_conv4();
        assert_eq!(p.bounds(), vec![16, 256, 256, 14, 14, 3, 3]);
        let p = inception_conv2();
        assert_eq!(p.bounds(), vec![16, 192, 192, 27, 27, 5, 5]);
        let p = bert_kqv();
        assert_eq!(p.bounds(), vec![16, 1024, 1024, 512]);
    }

    #[test]
    fn vgg16_has_13_convs_and_is_regular() {
        let layers = vgg16();
        assert_eq!(layers.len(), 13);
        // Consecutive VGG layers differ in at most 3 dims (paper: regular;
        // stage transitions change K plus the two spatial dims).
        for w in layers.windows(2) {
            assert!(w[0].edit_distance(&w[1]) <= 3, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn mnasnet_is_more_irregular_than_vgg() {
        let v = vgg16();
        let m = mnasnet();
        let avg = |ls: &[Problem]| {
            ls.windows(2).map(|w| w[0].edit_distance(&w[1]) as f64).sum::<f64>()
                / (ls.len() - 1) as f64
        };
        assert!(avg(&m) > avg(&v), "mnasnet {} <= vgg {}", avg(&m), avg(&v));
    }

    #[test]
    fn resnet50_layer_count_and_bounds_positive() {
        let layers = resnet50();
        assert_eq!(layers.len(), 17);
        for l in &layers {
            assert!(l.total_macs() > 0);
        }
    }

    #[test]
    fn mobilenet_alternates_pointwise_depthwise() {
        let layers = mobilenet_v2();
        assert!(layers.iter().any(|l| l.dim_index(DimName::K).is_none()));
        assert!(layers.len() > 15);
    }

    #[test]
    fn model_lookup() {
        assert!(model("vgg16").is_some());
        assert!(model("bert_large").unwrap().len() == 3);
        assert!(model("nope").is_none());
    }
}
