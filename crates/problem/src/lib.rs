//! DNN workload representation for map-space exploration.
//!
//! A *workload* (called a [`Problem`] following Timeloop's terminology) is a
//! perfectly-nested loop program: a list of iteration dimensions with bounds
//! (e.g. the seven CONV2D loops `B, K, C, Y, X, R, S`) plus a set of tensors,
//! each described by a *projection* from iteration space to data space.
//!
//! The cost model and the mappers never special-case CONV vs GEMM: everything
//! is driven by the dimension list and the projections, so adding a new
//! operator type only requires a new constructor.
//!
//! # Example
//!
//! ```
//! use problem::Problem;
//!
//! // Resnet Conv_4 from the paper: (B,K,C,Y,X,R,S) = (16,256,256,14,14,3,3)
//! let p = Problem::conv2d("resnet_conv4", 16, 256, 256, 14, 14, 3, 3);
//! assert_eq!(p.num_dims(), 7);
//! assert_eq!(p.total_macs(), 16 * 256 * 256 * 14 * 14 * 3 * 3);
//! ```

pub mod codec;
mod dims;
mod projection;
mod workload;
pub mod zoo;

pub use dims::{DimDef, DimName};
pub use projection::{ProjTerm, Projection};
pub use workload::{Density, OperatorKind, Problem, TensorDef, TensorKind};
