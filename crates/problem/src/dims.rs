//! Iteration-space dimension names and definitions.

use std::fmt;

/// Canonical name of an iteration dimension.
///
/// CONV2D uses `B, K, C, Y, X, R, S`; GEMM uses `B, M, K, N` (with `K` being
/// the contracted dimension in both conventions). Names are carried for
/// display, workload-similarity computation (warm-start), and constructing
/// tensor projections; the core machinery works on dimension *indices*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DimName {
    /// Batch.
    B,
    /// Output channels (CONV) / contracted dimension (GEMM).
    K,
    /// Input channels.
    C,
    /// Output rows.
    Y,
    /// Output columns.
    X,
    /// Filter rows.
    R,
    /// Filter columns.
    S,
    /// GEMM output rows.
    M,
    /// GEMM output columns.
    N,
}

impl DimName {
    /// All names, in canonical order.
    pub const ALL: [DimName; 9] = [
        DimName::B,
        DimName::K,
        DimName::C,
        DimName::Y,
        DimName::X,
        DimName::R,
        DimName::S,
        DimName::M,
        DimName::N,
    ];

    /// Single-letter label used in printed mappings (matches the paper's
    /// notation, e.g. the "XB.." order buckets of Fig. 7).
    pub fn letter(self) -> char {
        match self {
            DimName::B => 'B',
            DimName::K => 'K',
            DimName::C => 'C',
            DimName::Y => 'Y',
            DimName::X => 'X',
            DimName::R => 'R',
            DimName::S => 'S',
            DimName::M => 'M',
            DimName::N => 'N',
        }
    }
}

impl fmt::Display for DimName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One iteration dimension of a [`crate::Problem`]: a name and a loop bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimDef {
    /// Display/semantic name.
    pub name: DimName,
    /// Loop bound (full extent of the dimension). Always ≥ 1.
    pub bound: u64,
}

impl DimDef {
    /// Creates a dimension definition.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`; a zero-extent loop is not a valid workload.
    pub fn new(name: DimName, bound: u64) -> Self {
        assert!(bound >= 1, "dimension {name} must have bound >= 1");
        DimDef { name, bound }
    }
}

impl fmt::Display for DimDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in DimName::ALL {
            assert!(seen.insert(n.letter()), "duplicate letter for {n:?}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DimDef::new(DimName::K, 256).to_string(), "K=256");
        assert_eq!(DimName::Y.to_string(), "Y");
    }

    #[test]
    #[should_panic(expected = "bound >= 1")]
    fn zero_bound_rejected() {
        DimDef::new(DimName::B, 0);
    }
}
