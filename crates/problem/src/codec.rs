//! Compact text codec for workloads, used to persist replay buffers and to
//! pass workloads to the CLI without a serialization-format dependency.
//!
//! Format: `OP;name;D=bound,D=bound,...` — e.g.
//! `CONV2D;Resnet Conv_3;B=16,K=128,C=128,Y=28,X=28,R=3,S=3`.

use crate::{DimName, OperatorKind, Problem};
use std::fmt;

/// Error parsing a problem spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProblemError(String);

impl fmt::Display for ParseProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid problem spec: {}", self.0)
    }
}

impl std::error::Error for ParseProblemError {}

fn dim_name(s: &str) -> Option<DimName> {
    DimName::ALL.into_iter().find(|d| d.letter().to_string() == s)
}

/// Serializes a problem to its spec string.
pub fn to_spec(p: &Problem) -> String {
    let dims: Vec<String> = p.dims().iter().map(|d| format!("{}={}", d.name, d.bound)).collect();
    format!("{};{};{}", p.op(), p.name(), dims.join(","))
}

/// Parses a spec string back into a [`Problem`].
///
/// The operator kind determines the expected dimension set; the canonical
/// constructors rebuild the tensor projections.
///
/// # Errors
///
/// Returns an error on malformed syntax, unknown operators/dims, or a
/// dimension set that does not match the operator.
pub fn from_spec(spec: &str) -> Result<Problem, ParseProblemError> {
    let err = |m: &str| ParseProblemError(format!("{m} in `{spec}`"));
    let mut parts = spec.splitn(3, ';');
    let op = parts.next().ok_or_else(|| err("missing operator"))?;
    let name = parts.next().ok_or_else(|| err("missing name"))?.to_string();
    let dims_str = parts.next().ok_or_else(|| err("missing dims"))?;
    let mut bounds = std::collections::BTreeMap::new();
    for tok in dims_str.split(',') {
        let (d, b) = tok.split_once('=').ok_or_else(|| err("bad dim token"))?;
        let dim = dim_name(d.trim()).ok_or_else(|| err("unknown dim"))?;
        let bound: u64 = b.trim().parse().map_err(|_| err("bad bound"))?;
        if bound == 0 {
            return Err(err("zero bound"));
        }
        bounds.insert(dim, bound);
    }
    let get = |d: DimName| bounds.get(&d).copied().ok_or_else(|| err("missing dim"));
    use DimName::*;
    let p = match op {
        "CONV2D" => Problem::conv2d(name, get(B)?, get(K)?, get(C)?, get(Y)?, get(X)?, get(R)?, get(S)?),
        "PWCONV" => {
            Problem::pointwise_conv2d(name, get(B)?, get(K)?, get(C)?, get(Y)?, get(X)?)
        }
        "DWCONV" => {
            Problem::depthwise_conv2d(name, get(B)?, get(C)?, get(Y)?, get(X)?, get(R)?, get(S)?)
        }
        "GEMM" => Problem::gemm(name, get(B)?, get(M)?, get(K)?, get(N)?),
        _ => return Err(err("unknown operator")),
    };
    Ok(p)
}

/// Whether two problems have identical operator kind and dimension bounds
/// (ignoring the display name) — the signature used when re-attaching a
/// persisted replay buffer.
pub fn same_signature(a: &Problem, b: &Problem) -> bool {
    a.op() == b.op() && a.dims() == b.dims()
}

impl OperatorKind {
    /// Parses the operator tag used by the spec format.
    pub fn from_tag(tag: &str) -> Option<OperatorKind> {
        match tag {
            "CONV2D" => Some(OperatorKind::Conv2d),
            "PWCONV" => Some(OperatorKind::PointwiseConv2d),
            "DWCONV" => Some(OperatorKind::DepthwiseConv2d),
            "GEMM" => Some(OperatorKind::Gemm),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_operator() {
        let cases = vec![
            crate::zoo::resnet_conv3(),
            crate::zoo::bert_kqv(),
            Problem::pointwise_conv2d("pw", 2, 32, 16, 14, 14),
            Problem::depthwise_conv2d("dw", 2, 32, 14, 14, 3, 3),
        ];
        for p in cases {
            let spec = to_spec(&p);
            let back = from_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(p, back, "{spec}");
        }
    }

    #[test]
    fn spec_is_human_readable() {
        let spec = to_spec(&crate::zoo::resnet_conv3());
        assert_eq!(spec, "CONV2D;Resnet Conv_3;B=16,K=128,C=128,Y=28,X=28,R=3,S=3");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "CONV2D",
            "CONV2D;x",
            "CONV2D;x;B=16",                 // missing dims
            "NOPE;x;B=1,M=1,K=1,N=1",        // unknown op
            "GEMM;x;B=1,M=0,K=1,N=1",        // zero bound
            "GEMM;x;B=1,M=a,K=1,N=1",        // bad bound
            "GEMM;x;Q=1,M=1,K=1,N=1",        // unknown dim
        ] {
            assert!(from_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn signature_ignores_name() {
        let a = Problem::gemm("a", 2, 4, 4, 4);
        let b = Problem::gemm("b", 2, 4, 4, 4);
        let c = Problem::gemm("c", 2, 4, 8, 4);
        assert!(same_signature(&a, &b));
        assert!(!same_signature(&a, &c));
    }

    #[test]
    fn operator_tags_round_trip() {
        for op in [
            OperatorKind::Conv2d,
            OperatorKind::PointwiseConv2d,
            OperatorKind::DepthwiseConv2d,
            OperatorKind::Gemm,
        ] {
            assert_eq!(OperatorKind::from_tag(&op.to_string()), Some(op));
        }
        assert_eq!(OperatorKind::from_tag("???"), None);
    }
}
