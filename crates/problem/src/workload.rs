//! The [`Problem`] type: one DNN layer/operator as a perfectly nested loop
//! program with tensor projections.

use crate::dims::{DimDef, DimName};
use crate::projection::{ProjTerm, Projection};
use std::fmt;

/// High-level operator class; informational (the cost model is driven purely
/// by dims + projections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Standard 7-loop 2D convolution.
    Conv2d,
    /// Depth-wise convolution (no cross-channel reduction).
    DepthwiseConv2d,
    /// Point-wise (1x1) convolution.
    PointwiseConv2d,
    /// (Batched) matrix multiply, e.g. FC / attention projections.
    Gemm,
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperatorKind::Conv2d => "CONV2D",
            OperatorKind::DepthwiseConv2d => "DWCONV",
            OperatorKind::PointwiseConv2d => "PWCONV",
            OperatorKind::Gemm => "GEMM",
        };
        f.write_str(s)
    }
}

/// Role of a tensor in the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Read-only activation input.
    Input,
    /// Read-only weights/parameters.
    Weight,
    /// Read-modify-write output (partial sums accumulate over the reduction
    /// dimensions — the dims the output projection does not depend on).
    Output,
}

/// One tensor of a [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorDef {
    /// Display name ("Inputs", "Weights", "Outputs").
    pub name: String,
    /// Role.
    pub kind: TensorKind,
    /// Iteration-space → data-space projection.
    pub projection: Projection,
}

/// Densities of the operand tensors, as fractions of nonzeros in `(0, 1]`.
///
/// `1.0` everywhere is a dense workload. The paper treats density as a
/// *workload feature* (§3), so it lives here rather than in the cost model;
/// the sparse cost model consumes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Density {
    /// Weight density (fixed once a model is pruned).
    pub weight: f64,
    /// Input-activation density (dynamic at runtime).
    pub input: f64,
}

impl Density {
    /// Fully dense workload.
    pub const DENSE: Density = Density { weight: 1.0, input: 1.0 };

    /// Weight-sparse workload with dense activations (Table 2 / Table 3).
    pub fn weight_sparse(weight: f64) -> Self {
        Density { weight, input: 1.0 }
    }

    /// Activation-sparse workload with dense weights (Table 4).
    pub fn input_sparse(input: f64) -> Self {
        Density { weight: 1.0, input }
    }

    /// Density of the given tensor kind (outputs are reported dense here; the
    /// sparse cost model derives output density from the operands and the
    /// reduction size).
    pub fn of(&self, kind: TensorKind) -> f64 {
        match kind {
            TensorKind::Input => self.input,
            TensorKind::Weight => self.weight,
            TensorKind::Output => 1.0,
        }
    }

    /// Whether this is the fully dense profile.
    pub fn is_dense(&self) -> bool {
        self.weight == 1.0 && self.input == 1.0
    }
}

impl Default for Density {
    fn default() -> Self {
        Density::DENSE
    }
}

impl Eq for Density {}

/// One DNN layer/operator workload: named dimensions with bounds plus tensor
/// projections. This is the unit of map-space exploration (the paper targets
/// per-layer mapping; inter-layer fusion is out of scope, §3 footnote 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    name: String,
    op: OperatorKind,
    dims: Vec<DimDef>,
    tensors: Vec<TensorDef>,
}

impl Problem {
    /// Generic constructor. Prefer the operator-specific constructors
    /// ([`Problem::conv2d`], [`Problem::gemm`], ...) unless you are defining
    /// a new operator type.
    ///
    /// # Panics
    ///
    /// Panics if any tensor projection references a dim index out of range,
    /// if there is not exactly one [`TensorKind::Output`] tensor, or if
    /// `dims` is empty.
    pub fn new(
        name: impl Into<String>,
        op: OperatorKind,
        dims: Vec<DimDef>,
        tensors: Vec<TensorDef>,
    ) -> Self {
        assert!(!dims.is_empty(), "a problem needs at least one dimension");
        for t in &tensors {
            for d in t.projection.relevant_dims() {
                assert!(d < dims.len(), "tensor {} references dim {d} out of range", t.name);
            }
        }
        let outputs = tensors.iter().filter(|t| t.kind == TensorKind::Output).count();
        assert_eq!(outputs, 1, "exactly one output tensor expected, found {outputs}");
        Problem { name: name.into(), op, dims, tensors }
    }

    /// Standard 7-loop CONV2D, stride 1.
    ///
    /// Dim order is `(B, K, C, Y, X, R, S)` matching the paper's Table 1:
    /// `Y, X` are *output* spatial sizes; the input halo (`Y+R-1`) is modeled
    /// by the sliding-window projection.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(name: impl Into<String>, b: u64, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        let dims = vec![
            DimDef::new(DimName::B, b),
            DimDef::new(DimName::K, k),
            DimDef::new(DimName::C, c),
            DimDef::new(DimName::Y, y),
            DimDef::new(DimName::X, x),
            DimDef::new(DimName::R, r),
            DimDef::new(DimName::S, s),
        ];
        let (db, dk, dc, dy, dx, dr, ds) = (0, 1, 2, 3, 4, 5, 6);
        let tensors = vec![
            TensorDef {
                name: "Inputs".into(),
                kind: TensorKind::Input,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dc),
                    ProjTerm::Window { base: dy, window: dr },
                    ProjTerm::Window { base: dx, window: ds },
                ]),
            },
            TensorDef {
                name: "Weights".into(),
                kind: TensorKind::Weight,
                projection: Projection::new(vec![
                    ProjTerm::Single(dk),
                    ProjTerm::Single(dc),
                    ProjTerm::Single(dr),
                    ProjTerm::Single(ds),
                ]),
            },
            TensorDef {
                name: "Outputs".into(),
                kind: TensorKind::Output,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dk),
                    ProjTerm::Single(dy),
                    ProjTerm::Single(dx),
                ]),
            },
        ];
        Problem::new(name, OperatorKind::Conv2d, dims, tensors)
    }

    /// Point-wise (1x1) convolution: a CONV2D with `R = S = 1`.
    pub fn pointwise_conv2d(name: impl Into<String>, b: u64, k: u64, c: u64, y: u64, x: u64) -> Self {
        let mut p = Problem::conv2d(name, b, k, c, y, x, 1, 1);
        p.op = OperatorKind::PointwiseConv2d;
        p
    }

    /// Depth-wise convolution: per-channel filtering, no cross-channel
    /// reduction. Dims `(B, C, Y, X, R, S)`.
    pub fn depthwise_conv2d(name: impl Into<String>, b: u64, c: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        let dims = vec![
            DimDef::new(DimName::B, b),
            DimDef::new(DimName::C, c),
            DimDef::new(DimName::Y, y),
            DimDef::new(DimName::X, x),
            DimDef::new(DimName::R, r),
            DimDef::new(DimName::S, s),
        ];
        let (db, dc, dy, dx, dr, ds) = (0, 1, 2, 3, 4, 5);
        let tensors = vec![
            TensorDef {
                name: "Inputs".into(),
                kind: TensorKind::Input,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dc),
                    ProjTerm::Window { base: dy, window: dr },
                    ProjTerm::Window { base: dx, window: ds },
                ]),
            },
            TensorDef {
                name: "Weights".into(),
                kind: TensorKind::Weight,
                projection: Projection::new(vec![
                    ProjTerm::Single(dc),
                    ProjTerm::Single(dr),
                    ProjTerm::Single(ds),
                ]),
            },
            TensorDef {
                name: "Outputs".into(),
                kind: TensorKind::Output,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dc),
                    ProjTerm::Single(dy),
                    ProjTerm::Single(dx),
                ]),
            },
        ];
        Problem::new(name, OperatorKind::DepthwiseConv2d, dims, tensors)
    }

    /// Batched GEMM `C[b,m,n] += A[b,m,k] * W[k,n]` with dims `(B, M, K, N)`
    /// matching the paper's Table 1 BERT rows. `A` is the activation operand
    /// and `W` the weight operand (sparse-dense GEMM in §4.5.3 makes the
    /// weight matrix the sparse one).
    pub fn gemm(name: impl Into<String>, b: u64, m: u64, k: u64, n: u64) -> Self {
        let dims = vec![
            DimDef::new(DimName::B, b),
            DimDef::new(DimName::M, m),
            DimDef::new(DimName::K, k),
            DimDef::new(DimName::N, n),
        ];
        let (db, dm, dk, dn) = (0, 1, 2, 3);
        let tensors = vec![
            TensorDef {
                name: "A".into(),
                kind: TensorKind::Input,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dm),
                    ProjTerm::Single(dk),
                ]),
            },
            TensorDef {
                name: "W".into(),
                kind: TensorKind::Weight,
                projection: Projection::new(vec![ProjTerm::Single(dk), ProjTerm::Single(dn)]),
            },
            TensorDef {
                name: "Out".into(),
                kind: TensorKind::Output,
                projection: Projection::new(vec![
                    ProjTerm::Single(db),
                    ProjTerm::Single(dm),
                    ProjTerm::Single(dn),
                ]),
            },
        ];
        Problem::new(name, OperatorKind::Gemm, dims, tensors)
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operator class.
    pub fn op(&self) -> OperatorKind {
        self.op
    }

    /// The iteration dimensions, in canonical order.
    pub fn dims(&self) -> &[DimDef] {
        &self.dims
    }

    /// Number of iteration dimensions (7 for CONV2D, 4 for GEMM, ...).
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Loop bound of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn bound(&self, d: usize) -> u64 {
        self.dims[d].bound
    }

    /// All loop bounds as a vector.
    pub fn bounds(&self) -> Vec<u64> {
        self.dims.iter().map(|d| d.bound).collect()
    }

    /// The tensors (inputs, weights, outputs).
    pub fn tensors(&self) -> &[TensorDef] {
        &self.tensors
    }

    /// The single output tensor.
    pub fn output(&self) -> &TensorDef {
        self.tensors
            .iter()
            .find(|t| t.kind == TensorKind::Output)
            .expect("validated at construction")
    }

    /// Index of the dimension with the given name, if present.
    pub fn dim_index(&self, name: DimName) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Total multiply-accumulate count: the product of all loop bounds.
    pub fn total_macs(&self) -> u128 {
        self.dims.iter().map(|d| d.bound as u128).product()
    }

    /// Dimensions the output tensor does *not* depend on: the reduction
    /// (accumulation) dimensions. `C, R, S` for CONV2D; `K` for GEMM.
    pub fn reduction_dims(&self) -> Vec<usize> {
        let out = self.output();
        (0..self.dims.len()).filter(|&d| !out.projection.depends_on(d)).collect()
    }

    /// Workload-similarity *editing distance* used by warm-start (§5.1): the
    /// number of same-named dimensions whose bounds differ, plus the number
    /// of dimensions present in one workload but not the other.
    pub fn edit_distance(&self, other: &Problem) -> usize {
        let mut dist = 0usize;
        for d in &self.dims {
            match other.dim_index(d.name) {
                Some(j) => {
                    if other.dims[j].bound != d.bound {
                        dist += 1;
                    }
                }
                None => dist += 1,
            }
        }
        for d in &other.dims {
            if self.dim_index(d.name).is_none() {
                dist += 1;
            }
        }
        dist
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] (", self.name, self.op)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_macs_and_reduction() {
        let p = Problem::conv2d("c", 16, 256, 256, 14, 14, 3, 3);
        assert_eq!(p.total_macs(), 16 * 256 * 256 * 14 * 14 * 9);
        // C, R, S are reduction dims (indices 2, 5, 6).
        assert_eq!(p.reduction_dims(), vec![2, 5, 6]);
    }

    #[test]
    fn gemm_reduction_is_k() {
        let p = Problem::gemm("g", 16, 1024, 1024, 512);
        assert_eq!(p.reduction_dims(), vec![2]);
        assert_eq!(p.num_dims(), 4);
    }

    #[test]
    fn depthwise_has_no_k() {
        let p = Problem::depthwise_conv2d("dw", 1, 32, 56, 56, 3, 3);
        assert_eq!(p.dim_index(DimName::K), None);
        // Only R, S reduce.
        assert_eq!(p.reduction_dims(), vec![4, 5]);
    }

    #[test]
    fn pointwise_is_unit_filter_conv() {
        let p = Problem::pointwise_conv2d("pw", 1, 64, 32, 56, 56);
        assert_eq!(p.bound(p.dim_index(DimName::R).unwrap()), 1);
        assert_eq!(p.op(), OperatorKind::PointwiseConv2d);
    }

    #[test]
    fn edit_distance_counts_differing_bounds() {
        let a = Problem::conv2d("a", 16, 128, 128, 28, 28, 3, 3);
        let b = Problem::conv2d("b", 16, 256, 128, 28, 28, 3, 3);
        assert_eq!(a.edit_distance(&b), 1);
        let c = Problem::conv2d("c", 16, 256, 256, 14, 14, 3, 3);
        assert_eq!(a.edit_distance(&c), 4); // K, C, Y, X differ
        assert_eq!(a.edit_distance(&a), 0);
    }

    #[test]
    fn edit_distance_across_operator_types() {
        let conv = Problem::conv2d("a", 16, 128, 128, 28, 28, 3, 3);
        let gemm = Problem::gemm("g", 16, 1024, 1024, 512);
        // Shared names: B (equal: both 16), K (differ). Unshared: C,Y,X,R,S vs M,N.
        assert_eq!(conv.edit_distance(&gemm), 1 + 5 + 2);
        assert_eq!(conv.edit_distance(&gemm), gemm.edit_distance(&conv));
    }

    #[test]
    fn density_accessors() {
        let d = Density::weight_sparse(0.1);
        assert_eq!(d.of(TensorKind::Weight), 0.1);
        assert_eq!(d.of(TensorKind::Input), 1.0);
        assert!(!d.is_dense());
        assert!(Density::DENSE.is_dense());
        assert_eq!(Density::default(), Density::DENSE);
    }

    #[test]
    fn display_round_trips_key_fields() {
        let p = Problem::conv2d("resnet_conv3", 16, 128, 128, 28, 28, 3, 3);
        let s = p.to_string();
        assert!(s.contains("resnet_conv3"));
        assert!(s.contains("K=128"));
        assert!(s.contains("CONV2D"));
    }

    #[test]
    #[should_panic(expected = "exactly one output tensor")]
    fn requires_one_output() {
        Problem::new(
            "bad",
            OperatorKind::Gemm,
            vec![DimDef::new(DimName::M, 4)],
            vec![],
        );
    }
}
