//! Minimal dense linear algebra substrate.
//!
//! Supports the Fig. 4 map-space visualization (PCA over mapping feature
//! vectors) without external dependencies: a row-major [`Matrix`], a cyclic
//! Jacobi symmetric eigendecomposition ([`jacobi_eigen`]), and [`Pca`].
//!
//! # Example
//!
//! ```
//! use linalg::Pca;
//!
//! let data = vec![vec![1.0, 1.0], vec![2.0, 2.1], vec![3.0, 2.9]];
//! let pca = Pca::fit(&data, 1);
//! assert!(pca.explained_variance_ratio()[0] > 0.9);
//! ```

mod eigen;
mod matrix;
mod pca;

pub use eigen::{jacobi_eigen, Eigen};
pub use matrix::Matrix;
pub use pca::Pca;
