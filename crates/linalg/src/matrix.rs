//! A minimal dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense `f64` matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Maximum absolute off-diagonal element (Jacobi convergence check).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn max_off_diagonal_ignores_diagonal() {
        let a = Matrix::from_rows(&[vec![9.0, -2.0], vec![0.5, 9.0]]);
        assert_eq!(a.max_off_diagonal(), 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
