//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: `values[i]` with eigenvector
/// `vectors` column `i`, sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, matching `values`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with cyclic
/// Jacobi rotations. Robust and plenty fast for the feature dimensionalities
/// used here (tens of dimensions).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix) -> Eigen {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        if m.max_off_diagonal() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    // total_cmp: a NaN-poisoned covariance (e.g. from a faulty cost model
    // upstream) degrades the ordering instead of panicking the PCA.
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let e = jacobi_eigen(&a);
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ]);
        let e = jacobi_eigen(&a);
        let r = reconstruct(&e);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ]);
        let e = jacobi_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expected).abs() < 1e-9);
            }
        }
    }
}
