//! Principal component analysis, used by the Fig. 4 map-space
//! visualization: mapping feature vectors are projected onto their top-3
//! principal components.

use crate::eigen::jacobi_eigen;
use crate::matrix::Matrix;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Component vectors as rows (k × d).
    components: Matrix,
    explained: Vec<f64>,
}

impl Pca {
    /// Fits a `k`-component PCA on `data` (each row one sample).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, samples have unequal lengths, or
    /// `k > dim`.
    pub fn fit(data: &[Vec<f64>], k: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs at least one sample");
        let d = data[0].len();
        assert!(k <= d, "cannot extract {k} components from {d}-dim data");
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            assert_eq!(row.len(), d, "ragged samples");
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut cov = Matrix::zeros(d, d);
        for row in data {
            for i in 0..d {
                let ci = row[i] - mean[i];
                for j in i..d {
                    let cj = row[j] - mean[j];
                    cov[(i, j)] += ci * cj;
                }
            }
        }
        let denom = (data.len().max(2) - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        let eig = jacobi_eigen(&cov);
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let mut components = Matrix::zeros(k, d);
        for c in 0..k {
            for r in 0..d {
                components[(c, r)] = eig.vectors[(r, c)];
            }
        }
        let explained = eig.values[..k]
            .iter()
            .map(|&v| if total > 0.0 { v.max(0.0) / total } else { 0.0 })
            .collect();
        Pca { mean, components, explained }
    }

    /// Projects one sample onto the components.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        self.components.matvec(&centered)
    }

    /// Fraction of variance explained by each component, in order.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Points along (1, 1) with small noise: PC1 ≈ ±(1,1)/√2.
        let mut rng = SmallRng::seed_from_u64(0);
        let data: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let t: f64 = rng.gen_range(-1.0..1.0);
                let n: f64 = rng.gen_range(-0.01..0.01);
                vec![t + n, t - n]
            })
            .collect();
        let pca = Pca::fit(&data, 2);
        let c0 = (pca.components[(0, 0)], pca.components[(0, 1)]);
        assert!((c0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!((c0.0 - c0.1).abs() < 0.05, "PC1 should be diagonal: {c0:?}");
        assert!(pca.explained_variance_ratio()[0] > 0.99);
    }

    #[test]
    fn transform_of_mean_is_origin() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let pca = Pca::fit(&data, 2);
        let proj = pca.transform(&[3.0, 4.0]);
        assert!(proj.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn projection_preserves_distances_with_full_rank() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data: Vec<Vec<f64>> =
            (0..100).map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let pca = Pca::fit(&data, 4);
        let a = pca.transform(&data[0]);
        let b = pca.transform(&data[1]);
        let orig: f64 =
            data[0].iter().zip(&data[1]).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let proj: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        assert!((orig - proj).abs() < 1e-9);
    }

    #[test]
    fn explained_ratios_sum_below_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data: Vec<Vec<f64>> =
            (0..50).map(|_| (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let pca = Pca::fit(&data, 3);
        let s: f64 = pca.explained_variance_ratio().iter().sum();
        assert!(s > 0.0 && s <= 1.0 + 1e-9);
        assert_eq!(pca.num_components(), 3);
    }
}
