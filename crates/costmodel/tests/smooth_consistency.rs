//! Relaxation-consistency suite: at every integer lattice point in a seeded
//! corpus, the smooth relaxed cost must equal the exact `analyze()` result
//! within 1e-6 relative — so DOSA's projection never optimizes a different
//! objective than the exact re-cost reports.

use arch::{Arch, SparseCaps};
use costmodel::{analyze, CapacityMode, SmoothContext};
use mapping::MapSpace;
use problem::{Density, Problem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const REL_TOL: f64 = 1e-6;

fn rel(x: f64, y: f64) -> f64 {
    (x - y).abs() / y.abs().max(1e-30)
}

fn check_corpus(
    problem: &Problem,
    arch: &Arch,
    density: Density,
    caps: &SparseCaps,
    capacity: CapacityMode,
    seed: u64,
    n: usize,
) {
    let sctx = SmoothContext::new(problem, arch, density, caps);
    let space = MapSpace::new(problem.clone(), arch.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut checked = 0usize;
    while checked < n {
        let m = space.random(&mut rng);
        let Ok(exact) = analyze(problem, arch, &m, density, caps, capacity) else {
            // Strict sparse corners can reject a mapping the dense-legal
            // sampler produced; skip — consistency is defined on points the
            // exact engine accepts.
            continue;
        };
        checked += 1;
        let feats = mapping::features::features(&m);
        let sm = sctx.cost(&feats);
        assert!(
            rel(sm.latency_cycles, exact.cost.latency_cycles) < REL_TOL,
            "{} on {}: smooth latency {} vs exact {}",
            problem.name(),
            arch.name(),
            sm.latency_cycles,
            exact.cost.latency_cycles
        );
        assert!(
            rel(sm.energy_uj, exact.cost.energy_uj) < REL_TOL,
            "{} on {}: smooth energy {} vs exact {}",
            problem.name(),
            arch.name(),
            sm.energy_uj,
            exact.cost.energy_uj
        );
        assert!(
            rel(sm.edp(), exact.cost.edp()) < 4.0 * REL_TOL,
            "{} on {}: smooth EDP {} vs exact {}",
            problem.name(),
            arch.name(),
            sm.edp(),
            exact.cost.edp()
        );
    }
}

fn problems() -> Vec<Problem> {
    vec![
        problem::zoo::resnet_conv4(),
        problem::zoo::bert_kqv(),
        Problem::gemm("Tiny GEMM", 2, 32, 32, 32),
        Problem::conv2d("small conv", 2, 8, 8, 7, 7, 3, 3),
    ]
}

#[test]
fn smooth_equals_exact_dense_both_presets() {
    for arch in [Arch::accel_a(), Arch::accel_b()] {
        for (pi, p) in problems().iter().enumerate() {
            check_corpus(
                p,
                &arch,
                Density::DENSE,
                &SparseCaps::none(),
                CapacityMode::Strict,
                100 + pi as u64,
                30,
            );
        }
    }
}

#[test]
fn smooth_equals_exact_sparse_both_presets() {
    let configs = [
        (Density::weight_sparse(0.3), SparseCaps::flexible()),
        (Density::weight_sparse(0.05), SparseCaps::gating_only()),
    ];
    for arch in [Arch::accel_a(), Arch::accel_b()] {
        for (pi, p) in problems().iter().enumerate() {
            for (ci, (density, caps)) in configs.iter().enumerate() {
                check_corpus(
                    p,
                    &arch,
                    *density,
                    caps,
                    CapacityMode::Soft,
                    500 + 10 * pi as u64 + ci as u64,
                    20,
                );
            }
        }
    }
}

#[test]
fn smooth_is_finite_off_lattice() {
    // Between lattice points the relaxation must stay finite and positive —
    // otherwise descent steps can NaN-poison the search.
    let p = problem::zoo::resnet_conv4();
    let a = Arch::accel_b();
    let sctx = SmoothContext::dense(&p, &a);
    let space = MapSpace::new(p.clone(), a.clone());
    let mut rng = SmallRng::seed_from_u64(9);
    for k in 0..20 {
        let m = space.random(&mut rng);
        let mut feats = mapping::features::features(&m);
        for (i, f) in feats.iter_mut().enumerate() {
            *f += 0.31 * ((i + k) % 3) as f64 - 0.17;
        }
        let (sm, g) = sctx.cost_and_grad(&feats);
        assert!(sm.latency_cycles.is_finite() && sm.latency_cycles > 0.0);
        assert!(sm.energy_uj.is_finite() && sm.energy_uj > 0.0);
        assert!(g.iter().all(|x| x.is_finite()));
    }
}
