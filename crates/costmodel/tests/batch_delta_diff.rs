//! Differential suite pinning the batched (SoA) and delta (incremental)
//! evaluation paths to the one-shot [`AnalysisContext::analyze`] reference,
//! bit for bit, and the admissible lower bound to its soundness contract.
//!
//! These are the acceptance tests for the fast evaluation paths: any
//! divergence — even in the last ulp, or in *which* error a doomed mapping
//! produces — is a bug, because search trajectories and the evaluation
//! guard both assume the three paths are interchangeable.

use arch::{Arch, SparseCaps};
use costmodel::{AnalysisContext, CapacityMode, DeltaContext};
use mapping::{MapSpace, Mapping};
use problem::{Density, Problem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every (problem, arch preset, density regime) combination under test.
/// Dense runs use strict capacity (the `DenseModel` configuration), sparse
/// runs soft capacity with flexible sparse hardware (the `SparseModel`
/// configuration), so both `CapacityMode` branches are exercised.
fn configs() -> Vec<(String, AnalysisContext, MapSpace)> {
    let problems =
        [Problem::conv2d("conv", 2, 16, 16, 14, 14, 3, 3), Problem::gemm("gemm", 2, 32, 32, 32)];
    let archs = [Arch::accel_a(), Arch::accel_b()];
    let mut out = Vec::new();
    for p in &problems {
        for a in &archs {
            out.push((
                format!("{}/{}/dense", p.name(), a.name()),
                AnalysisContext::new(p, a, Density::DENSE, &SparseCaps::none(), CapacityMode::Strict),
                MapSpace::new(p.clone(), a.clone()),
            ));
            out.push((
                format!("{}/{}/sparse", p.name(), a.name()),
                AnalysisContext::new(
                    p,
                    a,
                    Density::weight_sparse(0.3),
                    &SparseCaps::flexible(),
                    CapacityMode::Soft,
                ),
                MapSpace::new(p.clone(), a.clone()),
            ));
        }
    }
    out
}

fn smallest_divisor(n: u64) -> u64 {
    (2..=n).find(|p| n.is_multiple_of(*p)).unwrap_or(n)
}

/// One hand-rolled single-gene edit, mirroring the mapper operators
/// (mutate-order / mutate-tile / mutate-parallelism) without depending on
/// the `mappers` crate. Every edit preserves the per-dimension factor
/// products, so the neighbor stays structurally legal; capacity violations
/// are allowed (both paths must then report the *same* error).
fn mutate(m: &Mapping, rng: &mut SmallRng) -> Mapping {
    let mut c = m.clone();
    let nl = c.levels().len();
    let d = c.levels()[0].temporal.len();
    match rng.gen_range(0..3u32) {
        0 => {
            let l = rng.gen_range(0..nl);
            let i = rng.gen_range(0..d);
            let j = rng.gen_range(0..d);
            c.levels_mut()[l].order.swap(i, j);
        }
        1 => {
            let dim = rng.gen_range(0..d);
            let from = rng.gen_range(0..nl);
            let to = rng.gen_range(0..nl);
            let f = c.levels()[from].temporal[dim];
            if from != to && f > 1 {
                let g = smallest_divisor(f);
                c.levels_mut()[from].temporal[dim] /= g;
                c.levels_mut()[to].temporal[dim] *= g;
            }
        }
        _ => {
            let dim = rng.gen_range(0..d);
            let l = rng.gen_range(0..nl);
            let s = c.levels()[l].spatial[dim];
            let t = c.levels()[l].temporal[dim];
            if s > 1 {
                let g = smallest_divisor(s);
                c.levels_mut()[l].spatial[dim] /= g;
                c.levels_mut()[l].temporal[dim] *= g;
            } else if t > 1 {
                let g = smallest_divisor(t);
                c.levels_mut()[l].temporal[dim] /= g;
                c.levels_mut()[l].spatial[dim] *= g;
            }
        }
    }
    c
}

/// `analyze_batch` must return exactly what per-mapping `analyze` returns —
/// same breakdowns to the bit, same errors for doomed mappings — across
/// ≥1000 random mappings per configuration.
#[test]
fn batch_matches_one_shot_bit_for_bit() {
    for (tag, ctx, space) in configs() {
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        let mappings: Vec<Mapping> = (0..1000).map(|_| space.random(&mut rng)).collect();
        // Mixed batch sizes: singletons, odd sizes, and one huge batch, so
        // the SoA arenas are exercised at every shape.
        for chunk in [1usize, 7, 64, 1000] {
            for ms in mappings.chunks(chunk) {
                let batched = ctx.analyze_batch(ms);
                assert_eq!(batched.len(), ms.len(), "{tag}: batch length");
                for (m, b) in ms.iter().zip(batched) {
                    assert_eq!(b, ctx.analyze(m), "{tag}: batch diverged from analyze()");
                }
            }
        }
    }
}

/// `DeltaContext::evaluate` must be bit-identical to `analyze` over
/// thousands of (parent, single-gene edit) pairs — including edit chains
/// (neighbor of a neighbor) and edits that make the mapping exceed
/// capacity, which must produce the identical error.
#[test]
fn delta_matches_one_shot_bit_for_bit() {
    for (tag, ctx, space) in configs() {
        let mut rng = SmallRng::seed_from_u64(0xDE17A);
        let mut pairs = 0usize;
        for _ in 0..40 {
            let parent = space.random(&mut rng);
            let delta = match DeltaContext::new(&ctx, &parent) {
                Ok(d) => d,
                // Strict-capacity parents can be illegal; analyze must
                // agree, and there is nothing to anchor a delta on.
                Err(e) => {
                    assert_eq!(ctx.analyze(&parent).unwrap_err(), e, "{tag}: parent error");
                    continue;
                }
            };
            let mut edits = Vec::with_capacity(25);
            let mut cursor = parent.clone();
            for k in 0..25 {
                // Mostly one edit from the parent; every fifth neighbor
                // drifts further so multi-level diffs are covered too.
                if k % 5 == 0 {
                    cursor = mutate(&cursor, &mut rng);
                    edits.push(cursor.clone());
                } else {
                    edits.push(mutate(&parent, &mut rng));
                }
            }
            edits.push(parent.clone()); // identity edit: full reuse path
            for (n, r) in edits.iter().zip(delta.evaluate_neighbors(&edits)) {
                assert_eq!(r, ctx.analyze(n), "{tag}: delta diverged from analyze()");
                pairs += 1;
            }
        }
        assert!(pairs >= 1000, "{tag}: only {pairs} delta pairs exercised");
    }
}

/// Soundness of the admissible bound: for every legal mapping,
/// `bound(m).cost` must lower-bound the true cost component-wise, and its
/// EDP must lower-bound the true EDP. An inadmissible bound would let the
/// mappers prune the true optimum.
#[test]
fn bound_is_admissible() {
    for (tag, ctx, space) in configs() {
        let mut rng = SmallRng::seed_from_u64(0xB0C0D);
        let mut checked = 0usize;
        for _ in 0..1000 {
            let m = space.random(&mut rng);
            let Ok(b) = ctx.analyze(&m) else { continue };
            let r = ctx.bound(&m).expect("legal mapping must have a bound");
            assert!(
                r.cost.latency_cycles <= b.cost.latency_cycles,
                "{tag}: latency bound {} > true {}",
                r.cost.latency_cycles,
                b.cost.latency_cycles
            );
            assert!(
                r.cost.energy_uj <= b.cost.energy_uj,
                "{tag}: energy bound {} > true {}",
                r.cost.energy_uj,
                b.cost.energy_uj
            );
            assert!(
                r.cost.edp() <= b.cost.edp(),
                "{tag}: EDP bound {} > true {}",
                r.cost.edp(),
                b.cost.edp()
            );
            checked += 1;
        }
        assert!(checked >= 500, "{tag}: only {checked} legal mappings checked");
    }
}
