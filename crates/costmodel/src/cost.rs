//! Cost figures of merit: latency, energy, and EDP (the paper's criterion).

use std::fmt;

/// The cost of executing one workload under one mapping.
///
/// Units follow the paper: latency in cycles, energy in µJ, so
/// [`Cost::edp`] is in `cycles·µJ` — directly comparable to the paper's
/// tables (e.g. Table 2's `3.1E+10 cycles uJ` entries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Execution latency in cycles.
    pub latency_cycles: f64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
}

impl Cost {
    /// Creates a cost.
    ///
    /// # Panics
    ///
    /// Panics (debug only) on non-finite or negative components.
    pub fn new(latency_cycles: f64, energy_uj: f64) -> Self {
        debug_assert!(latency_cycles.is_finite() && latency_cycles >= 0.0);
        debug_assert!(energy_uj.is_finite() && energy_uj >= 0.0);
        Cost { latency_cycles, energy_uj }
    }

    /// Energy-delay product in `cycles·µJ`.
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_uj
    }

    /// Pareto dominance on the (latency, energy) objectives: `self`
    /// dominates `other` if it is no worse on both axes and strictly better
    /// on at least one.
    pub fn dominates(&self, other: &Cost) -> bool {
        self.latency_cycles <= other.latency_cycles
            && self.energy_uj <= other.energy_uj
            && (self.latency_cycles < other.latency_cycles || self.energy_uj < other.energy_uj)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency={:.3e} cyc, energy={:.3e} uJ, EDP={:.3e} cyc*uJ",
            self.latency_cycles,
            self.energy_uj,
            self.edp()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_is_product() {
        let c = Cost::new(2.0e6, 3.0e3);
        assert_eq!(c.edp(), 6.0e9);
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = Cost::new(1.0, 1.0);
        let b = Cost::new(1.0, 2.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
        let c = Cost::new(0.5, 2.0);
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn display_contains_edp() {
        assert!(Cost::new(1e3, 1e2).to_string().contains("EDP=1.000e5"));
    }
}
