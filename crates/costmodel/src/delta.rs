//! Delta re-evaluation: incremental costing of single-gene neighbors.
//!
//! Local-search mappers (gamma's mutations, annealing, hill-climbing)
//! mostly evaluate *neighbors* of a mapping they already costed — one tile
//! factor moved or one loop order permuted. A full [`AnalysisContext`]
//! evaluation redoes every loop-nest boundary from scratch; a
//! [`DeltaContext`] caches the parent's per-boundary traffic contributions
//! and recomputes only the boundaries the edit actually invalidates.
//!
//! Reuse is *diff-based*, not edit-description-based: boundary `i`'s
//! contributions are a pure function of (a) the loop levels strictly
//! outside it (`0..i`, which determine refetch multiplicities), (b) the
//! child tile extents at level `i`, and (c) the child spill factor (itself
//! a function of those extents). A boundary is reused iff all three are
//! value-equal to the parent's, so any neighbor — however it was produced —
//! is evaluated correctly; edits just make most boundaries hit.
//!
//! Bit-identity with [`AnalysisContext::analyze`] is structural: cached
//! contributions are the exact `f64`s the full path would recompute, and
//! they are re-applied in the same boundary/tensor order, so every
//! accumulation performs the same IEEE operations. The
//! `batch_delta_diff` differential suite pins this over thousands of
//! random (parent, neighbor) pairs.

use crate::analysis::{AnalysisContext, Breakdown, BoundaryContrib, LevelTraffic};
use mapping::{Loop, Mapping, MappingError};

/// Reusable per-neighbor workspace: a batch of neighbors shares these
/// buffers instead of reallocating them per evaluation (the vectors that
/// end up owned by the returned [`Breakdown`] are still fresh per call).
#[derive(Debug, Default)]
struct Scratch {
    extents: Vec<u64>,
    ext_eq: Vec<bool>,
    nest: Vec<Loop>,
}

/// Incremental evaluator anchored at one parent mapping (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct DeltaContext<'a> {
    ctx: &'a AnalysisContext,
    parent: Mapping,
    parent_breakdown: Breakdown,
    /// Parent tile extents, levels `0..nl` flattened (`num_dims` each).
    extents: Vec<u64>,
    /// Parent per-level spill factors.
    spill: Vec<f64>,
    /// Cached contributions, boundary-major: `[(i-1) * nt + ti]`.
    contribs: Vec<BoundaryContrib>,
    /// All-unit register-tile extents (shared by every evaluation).
    unit: Vec<u64>,
}

impl<'a> DeltaContext<'a> {
    /// Evaluates `parent` in full and caches its per-boundary state.
    ///
    /// # Errors
    ///
    /// Same legality rules as [`AnalysisContext::analyze`].
    pub fn new(ctx: &'a AnalysisContext, parent: &Mapping) -> Result<Self, MappingError> {
        let arch = ctx.arch();
        let problem = ctx.problem();
        parent.validate_structure(problem, arch)?;
        let nl = arch.num_levels();
        let nt = problem.tensors().len();
        let d = problem.num_dims();

        let mut extents = vec![1u64; nl * d];
        sweep_extents(parent, nl, d, &mut extents);
        let mut spill = vec![1.0f64; nl];
        for li in 0..nl {
            spill[li] = ctx.spill_at(li, &extents[li * d..(li + 1) * d])?;
        }

        let nest = parent.nest();
        let unit = vec![1u64; d];
        let mut contribs = vec![BoundaryContrib::default(); nl * nt];
        let mut per_level = vec![LevelTraffic::default(); nl];
        for i in 1..=nl {
            let ext = if i < nl { &extents[i * d..(i + 1) * d] } else { &unit[..] };
            let sp = if i < nl { spill[i] } else { 1.0 };
            for ti in 0..nt {
                let c = ctx.boundary_contrib(&nest, i, ext, sp, ti);
                contribs[(i - 1) * nt + ti] = c;
                AnalysisContext::apply_contrib(&mut per_level, i, c);
            }
        }
        let parent_breakdown = ctx.finalize(parent, per_level, spill.clone());

        Ok(DeltaContext {
            ctx,
            parent: parent.clone(),
            parent_breakdown,
            extents,
            spill,
            contribs,
            unit,
        })
    }

    /// The parent this context is anchored at.
    pub fn parent(&self) -> &Mapping {
        &self.parent
    }

    /// The parent's full breakdown (computed once at construction).
    pub fn parent_breakdown(&self) -> &Breakdown {
        &self.parent_breakdown
    }

    /// Evaluates one neighbor, reusing every boundary the diff against the
    /// parent leaves intact. Bit-identical to
    /// [`AnalysisContext::analyze`]`(m)`.
    ///
    /// # Errors
    ///
    /// Same legality rules as [`AnalysisContext::analyze`].
    pub fn evaluate(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        self.evaluate_with(m, &mut Scratch::default())
    }

    fn evaluate_with(&self, m: &Mapping, s: &mut Scratch) -> Result<Breakdown, MappingError> {
        let ctx = self.ctx;
        let arch = ctx.arch();
        let problem = ctx.problem();
        m.validate_structure(problem, arch)?;
        let nl = arch.num_levels();
        let nt = problem.tensors().len();
        let d = problem.num_dims();

        // First level where the neighbor differs from the parent: boundary
        // i's multiplicities scan levels 0..i, so they are reusable iff
        // i <= first_diff.
        let first_diff = (0..nl)
            .find(|&l| m.levels()[l] != self.parent.levels()[l])
            .unwrap_or(nl);

        // Extents: integer backward sweep (cheap), then value-compare per
        // level to decide spill/contribution reuse.
        s.extents.clear();
        s.extents.resize(nl * d, 1);
        sweep_extents(m, nl, d, &mut s.extents);
        let extents = &s.extents;
        s.ext_eq.clear();
        s.ext_eq.resize(nl, false);
        for li in 0..nl {
            s.ext_eq[li] = extents[li * d..(li + 1) * d] == self.extents[li * d..(li + 1) * d];
        }
        let ext_eq = &s.ext_eq;

        // Spill is a pure function of the level's extents: reuse on
        // equality, recompute (propagating strict-capacity errors) on diff.
        let mut spill = vec![1.0f64; nl];
        for li in 0..nl {
            spill[li] = if ext_eq[li] {
                self.spill[li]
            } else {
                ctx.spill_at(li, &extents[li * d..(li + 1) * d])?
            };
        }

        // The nest is only needed for recomputed boundaries.
        let all_reused = first_diff == nl;
        s.nest.clear();
        if !all_reused {
            m.nest_into(&mut s.nest);
        }
        let nest = &s.nest;

        let mut per_level = vec![LevelTraffic::default(); nl];
        for i in 1..=nl {
            // Boundary nl's multiplicities scan the whole nest, so it is
            // only reusable when the neighbor equals the parent outright.
            let reuse = i <= first_diff && (i == nl || ext_eq[i]);
            let ext = if i < nl { &extents[i * d..(i + 1) * d] } else { &self.unit[..] };
            let sp = if i < nl { spill[i] } else { 1.0 };
            for ti in 0..nt {
                let c = if reuse {
                    self.contribs[(i - 1) * nt + ti]
                } else {
                    ctx.boundary_contrib(nest, i, ext, sp, ti)
                };
                AnalysisContext::apply_contrib(&mut per_level, i, c);
            }
        }
        Ok(ctx.finalize(m, per_level, spill))
    }

    /// Evaluates a slice of neighbors (see [`DeltaContext::evaluate`]).
    /// The whole batch shares one scratch workspace.
    pub fn evaluate_neighbors(
        &self,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        let mut scratch = Scratch::default();
        neighbors.iter().map(|m| self.evaluate_with(m, &mut scratch)).collect()
    }
}

/// Backward suffix-product sweep filling `out[li * d..]` with
/// `m.tile_extents(li)` for every level, in one pass.
fn sweep_extents(m: &Mapping, nl: usize, d: usize, out: &mut [u64]) {
    for li in (0..nl).rev() {
        let l = &m.levels()[li];
        for dim in 0..d {
            let above = if li + 1 < nl { out[(li + 1) * d + dim] } else { 1 };
            out[li * d + dim] = above * l.temporal[dim] * l.spatial[dim];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::{Arch, SparseCaps};
    use crate::analysis::CapacityMode;
    use mapping::MapSpace;
    use problem::{Density, Problem};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parent_breakdown_matches_full_analyze() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let ctx = AnalysisContext::new(
            &p,
            &a,
            Density::DENSE,
            &SparseCaps::none(),
            CapacityMode::Strict,
        );
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = s.random(&mut rng);
            let delta = DeltaContext::new(&ctx, &m).unwrap();
            assert_eq!(*delta.parent_breakdown(), ctx.analyze(&m).unwrap());
        }
    }

    #[test]
    fn arbitrary_neighbor_matches_full_analyze() {
        // Even a "neighbor" sharing nothing with the parent must evaluate
        // correctly (diff-based reuse simply never fires).
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let ctx = AnalysisContext::new(
            &p,
            &a,
            Density::DENSE,
            &SparseCaps::none(),
            CapacityMode::Strict,
        );
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(7);
        let parent = s.random(&mut rng);
        let delta = DeltaContext::new(&ctx, &parent).unwrap();
        for _ in 0..50 {
            let m = s.random(&mut rng);
            assert_eq!(delta.evaluate(&m).unwrap(), ctx.analyze(&m).unwrap());
        }
        // Identity neighbor: everything (including the register boundary)
        // is reused.
        assert_eq!(delta.evaluate(&parent).unwrap(), *delta.parent_breakdown());
    }
}
