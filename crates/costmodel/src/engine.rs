//! The [`CostModel`] trait and the dense/sparse engines mappers evaluate
//! against (the "Evaluation Method" box of the paper's Fig. 2).

use crate::analysis::{AnalysisContext, Breakdown, CapacityMode};
use crate::cost::Cost;
use crate::delta::DeltaContext;
use arch::{Arch, SparseCaps};
use mapping::{Mapping, MappingError};
use problem::{Density, Problem};

/// An analytical cost model bound to one (problem, architecture) pair.
///
/// Object-safe and `Sync` so mappers can share one evaluator across worker
/// threads. Implementations must be deterministic: the same mapping always
/// yields the same cost.
pub trait CostModel: Sync {
    /// The workload being mapped.
    fn problem(&self) -> &Problem;

    /// The accelerator being mapped onto.
    fn arch(&self) -> &Arch;

    /// Evaluates a mapping.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if the mapping is illegal for this
    /// model's legality rules.
    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError>;

    /// Full per-level breakdown (same legality rules as
    /// [`CostModel::evaluate`]).
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] if the mapping is illegal.
    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError>;

    /// Evaluates a batch. The default is a per-item loop; the analytical
    /// engines override it with one structure-of-arrays pass
    /// ([`AnalysisContext::analyze_batch`]). Results must be bit-identical
    /// to per-item [`CostModel::evaluate`] calls in batch order.
    fn evaluate_batch(&self, ms: &[Mapping]) -> Vec<Result<Cost, MappingError>> {
        ms.iter().map(|m| self.evaluate(m)).collect()
    }

    /// Detailed batch evaluation (same contract as
    /// [`CostModel::evaluate_batch`]).
    fn evaluate_detailed_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        ms.iter().map(|m| self.evaluate_detailed(m)).collect()
    }

    /// Evaluates neighbors of an already-costed `parent`. The default
    /// ignores the parent; the analytical engines override it with delta
    /// re-evaluation ([`DeltaContext`]), which reuses every loop-nest
    /// boundary the diff against the parent leaves intact. Bit-identical to
    /// [`CostModel::evaluate_batch`] by contract.
    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Cost, MappingError>> {
        let _ = parent;
        self.evaluate_batch(neighbors)
    }

    /// Detailed neighbor evaluation (same contract as
    /// [`CostModel::evaluate_neighbors`]).
    fn evaluate_neighbors_detailed(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        let _ = parent;
        self.evaluate_detailed_batch(neighbors)
    }

    /// Admissible lower bound on the cost of `m`: when `Some(b)`, the model
    /// guarantees `b ≤ evaluate(m)` component-wise (and on EDP), so callers
    /// may skip full evaluation of candidates whose bound already exceeds
    /// an incumbent without changing any search result. `None` means "no
    /// bound available — always evaluate" (the default; also what fault
    /// injectors return so pruning never masks an injected fault).
    fn cost_bound(&self, m: &Mapping) -> Option<Cost> {
        let _ = m;
        None
    }
}

/// Boxed models evaluate by delegation, so decorator stacks (guards, fault
/// injectors, watchdogs) compose over `Box<dyn CostModel>` as returned by
/// spec-driven construction paths like the CLI's model factory.
impl<M: CostModel + ?Sized> CostModel for Box<M> {
    fn problem(&self) -> &Problem {
        (**self).problem()
    }

    fn arch(&self) -> &Arch {
        (**self).arch()
    }

    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
        (**self).evaluate(m)
    }

    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        (**self).evaluate_detailed(m)
    }

    fn evaluate_batch(&self, ms: &[Mapping]) -> Vec<Result<Cost, MappingError>> {
        (**self).evaluate_batch(ms)
    }

    fn evaluate_detailed_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        (**self).evaluate_detailed_batch(ms)
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Cost, MappingError>> {
        (**self).evaluate_neighbors(parent, neighbors)
    }

    fn evaluate_neighbors_detailed(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        (**self).evaluate_neighbors_detailed(parent, neighbors)
    }

    fn cost_bound(&self, m: &Mapping) -> Option<Cost> {
        (**self).cost_bound(m)
    }
}

/// Timeloop-like dense analytical model: strict capacity legality, no
/// sparsity effects.
///
/// Construction precomputes an [`AnalysisContext`] so the per-mapping
/// evaluation path carries no per-`(problem, arch)` rederivation.
#[derive(Debug, Clone)]
pub struct DenseModel {
    ctx: AnalysisContext,
}

impl DenseModel {
    /// Binds the model to a workload and accelerator.
    pub fn new(problem: Problem, arch: Arch) -> Self {
        let ctx = AnalysisContext::new(
            &problem,
            &arch,
            Density::DENSE,
            &SparseCaps::none(),
            CapacityMode::Strict,
        );
        DenseModel { ctx }
    }
}

impl CostModel for DenseModel {
    fn problem(&self) -> &Problem {
        self.ctx.problem()
    }

    fn arch(&self) -> &Arch {
        self.ctx.arch()
    }

    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
        self.evaluate_detailed(m).map(|b| b.cost)
    }

    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        self.ctx.analyze(m)
    }

    fn evaluate_batch(&self, ms: &[Mapping]) -> Vec<Result<Cost, MappingError>> {
        self.ctx.analyze_batch(ms).into_iter().map(|r| r.map(|b| b.cost)).collect()
    }

    fn evaluate_detailed_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        self.ctx.analyze_batch(ms)
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Cost, MappingError>> {
        self.evaluate_neighbors_detailed(parent, neighbors)
            .into_iter()
            .map(|r| r.map(|b| b.cost))
            .collect()
    }

    fn evaluate_neighbors_detailed(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        match DeltaContext::new(&self.ctx, parent) {
            Ok(delta) => delta.evaluate_neighbors(neighbors),
            // Illegal parent: nothing to anchor on, fall back to the batch
            // path (bit-identical either way).
            Err(_) => self.ctx.analyze_batch(neighbors),
        }
    }

    fn cost_bound(&self, m: &Mapping) -> Option<Cost> {
        self.ctx.bound(m).map(|b| b.cost)
    }
}

/// Sparseloop-like sparse model: compressed footprints and traffic,
/// gating/skipping, inner/outer-product style overheads, and *soft*
/// capacity (overflowing tiles spill, inflating traffic, rather than being
/// illegal — required for Table 2's cross-density testing).
#[derive(Debug, Clone)]
pub struct SparseModel {
    ctx: AnalysisContext,
}

impl SparseModel {
    /// Binds the model to a workload, accelerator, sparse capabilities, and
    /// workload density profile.
    pub fn new(problem: Problem, arch: Arch, caps: SparseCaps, density: Density) -> Self {
        let ctx = AnalysisContext::new(&problem, &arch, density, &caps, CapacityMode::Soft);
        SparseModel { ctx }
    }

    /// The density profile this model evaluates at.
    pub fn density(&self) -> Density {
        self.ctx.density()
    }

    /// Same model, different density — used to cross-test a fixed mapping
    /// under densities it was not tuned for (Table 2) and by the
    /// sparsity-aware objective's density sweep (Table 4). The context is
    /// rebuilt: occupancy and compression scales are density-derived.
    pub fn with_density(&self, density: Density) -> Self {
        SparseModel::new(self.ctx.problem().clone(), self.ctx.arch().clone(), *self.ctx.caps(), density)
    }

    /// The sparse capability description.
    pub fn caps(&self) -> &SparseCaps {
        self.ctx.caps()
    }
}

impl CostModel for SparseModel {
    fn problem(&self) -> &Problem {
        self.ctx.problem()
    }

    fn arch(&self) -> &Arch {
        self.ctx.arch()
    }

    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
        self.evaluate_detailed(m).map(|b| b.cost)
    }

    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        self.ctx.analyze(m)
    }

    fn evaluate_batch(&self, ms: &[Mapping]) -> Vec<Result<Cost, MappingError>> {
        self.ctx.analyze_batch(ms).into_iter().map(|r| r.map(|b| b.cost)).collect()
    }

    fn evaluate_detailed_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        self.ctx.analyze_batch(ms)
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Cost, MappingError>> {
        self.evaluate_neighbors_detailed(parent, neighbors)
            .into_iter()
            .map(|r| r.map(|b| b.cost))
            .collect()
    }

    fn evaluate_neighbors_detailed(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        match DeltaContext::new(&self.ctx, parent) {
            Ok(delta) => delta.evaluate_neighbors(neighbors),
            Err(_) => self.ctx.analyze_batch(neighbors),
        }
    }

    fn cost_bound(&self, m: &Mapping) -> Option<Cost> {
        self.ctx.bound(m).map(|b| b.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::{force_order, order_reduction_innermost, order_reduction_outermost};
    use mapping::MapSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn conv() -> Problem {
        Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3)
    }

    #[test]
    fn dense_model_is_deterministic() {
        let model = DenseModel::new(conv(), Arch::accel_b());
        let s = MapSpace::new(conv(), Arch::accel_b());
        let mut rng = SmallRng::seed_from_u64(9);
        let m = s.random(&mut rng);
        let a = model.evaluate(&m).unwrap();
        let b = model.evaluate(&m).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_dense_caps_none_matches_dense_model() {
        let p = conv();
        let a = Arch::accel_b();
        let dense = DenseModel::new(p.clone(), a.clone());
        let sparse = SparseModel::new(p.clone(), a.clone(), SparseCaps::none(), Density::DENSE);
        let s = MapSpace::new(p, a);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let m = s.random(&mut rng);
            let cd = dense.evaluate(&m).unwrap();
            let cs = sparse.evaluate(&m).unwrap();
            assert_eq!(cd, cs);
        }
    }

    #[test]
    fn sparser_weights_never_cost_more() {
        let p = conv();
        let a = Arch::accel_b();
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let m = s.random(&mut rng);
            let mut last = f64::INFINITY;
            for dw in [1.0, 0.5, 0.1, 0.01] {
                let model = SparseModel::new(
                    p.clone(),
                    a.clone(),
                    SparseCaps::flexible(),
                    Density::weight_sparse(dw),
                );
                let c = model.evaluate(&m).unwrap().edp();
                assert!(
                    c <= last * 1.0001,
                    "EDP increased from {last:.3e} to {c:.3e} at density {dw}"
                );
                last = c;
            }
        }
    }

    #[test]
    fn skipping_beats_gating_beats_nothing_on_latency() {
        let p = conv();
        let a = Arch::accel_b();
        let m = Mapping::trivial(&p, &a);
        let d = Density::weight_sparse(0.1);
        let lat = |caps: SparseCaps| {
            SparseModel::new(p.clone(), a.clone(), caps, d)
                .evaluate(&m)
                .unwrap()
                .latency_cycles
        };
        assert!(lat(SparseCaps::flexible()) < lat(SparseCaps::gating_only()));
        let en = |caps: SparseCaps| {
            SparseModel::new(p.clone(), a.clone(), caps, d).evaluate(&m).unwrap().energy_uj
        };
        assert!(en(SparseCaps::gating_only()) < en(SparseCaps::none()));
    }

    #[test]
    fn inner_outer_crossover_with_density() {
        // The Table 3 mechanism: inner wins dense, outer wins very sparse.
        let p = Problem::gemm("g", 2, 32, 32, 32);
        let a = Arch::accel_b();
        let mut inner = Mapping::trivial(&p, &a);
        force_order(&mut inner, &order_reduction_innermost(&p));
        let mut outer = Mapping::trivial(&p, &a);
        force_order(&mut outer, &order_reduction_outermost(&p));
        let edp = |m: &Mapping, dw: f64| {
            SparseModel::new(
                p.clone(),
                a.clone(),
                SparseCaps::flexible(),
                Density::weight_sparse(dw),
            )
            .evaluate(m)
            .unwrap()
            .edp()
        };
        assert!(edp(&inner, 1.0) < edp(&outer, 1.0), "inner should win dense");
        assert!(edp(&outer, 0.01) < edp(&inner, 0.01), "outer should win sparse");
    }

    #[test]
    fn with_density_rebinds() {
        let model = SparseModel::new(
            conv(),
            Arch::accel_b(),
            SparseCaps::flexible(),
            Density::DENSE,
        );
        let d = Density::weight_sparse(0.5);
        assert_eq!(model.with_density(d).density(), d);
        assert_eq!(model.density(), Density::DENSE);
    }

    #[test]
    fn trait_object_usable() {
        let model = DenseModel::new(conv(), Arch::accel_b());
        let dyn_model: &dyn CostModel = &model;
        let m = Mapping::trivial(dyn_model.problem(), dyn_model.arch());
        assert!(dyn_model.evaluate(&m).is_ok());
    }
}
