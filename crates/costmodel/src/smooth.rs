//! Differentiable relaxation of the analytical cost engine (DOSA-style).
//!
//! The exact engine in [`crate::analysis`] is a piecewise-constant function
//! of a mapping's integer tile factors and discrete loop orders — useless
//! for gradient descent. This module relaxes it into a smooth function of
//! the *continuous feature vector* of `mapping::features` (per level, per
//! dim: `log2 temporal`, `log2 spatial`, normalized loop position), with
//! two properties:
//!
//! 1. **Consistency**: at every integer lattice point (the features of a
//!    legal mapping) the smooth cost equals `analyze()` to floating-point
//!    accuracy, so projection never optimizes a different objective than
//!    the exact re-cost reports.
//! 2. **Differentiability**: reverse-mode gradients of `ln EDP` w.r.t. every
//!    feature are available from one backward sweep over a hand-written
//!    tape (std-only, same spirit as the MLP backprop in
//!    `crates/surrogate/src/nn.rs`).
//!
//! The discontinuities of the exact engine are relaxed as follows:
//!
//! * **Tile factors** `b = 2^feature` are continuous in log space; every
//!   multiplicative traffic term uses them directly (a unit factor
//!   contributes exactly 1).
//! * **Stationarity** (the `started` flag of `multiplicities`): an
//!   irrelevant temporal loop `L` multiplies refetch traffic by `b^e` where
//!   `e = 1 - Π_r (1 - inner(r, L)·ν(r))` over relevant temporal loops `r`.
//!   `ν` is a smoothstep "non-unit" gate on the log2 factor and
//!   `inner(r, L)` a smoothstep on the loop-position gap — both sit exactly
//!   at 0/1 (with zero slope) on the integer lattice.
//! * **Capacity** uses the soft-spill form `max(1, needed/capacity)`, which
//!   coincides with the exact engine for legal mappings and gives a usable
//!   slope into the infeasible region.
//! * **Product style** (inner vs outer) is piecewise constant in the order
//!   features; it is decoded hard (argsort + rounding) and enters the tape
//!   as a constant, which is exact at lattice points and contributes no
//!   gradient — the loop-order gradient signal flows through stationarity
//!   instead.

use crate::analysis::AnalysisContext;
use crate::cost::Cost;
use crate::style::ProductStyle;
use arch::{Arch, SparseCaps};
use mapping::{LevelMapping, Mapping};
use problem::{Density, Problem, ProjTerm, TensorKind};

const NONE: u32 = u32::MAX;

/// A value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(u32);

#[derive(Debug, Clone, Copy)]
struct Node {
    p0: u32,
    d0: f64,
    p1: u32,
    d1: f64,
}

/// A Wengert list: every operation appends one node holding its parents and
/// local partials; [`Tape::grad`] runs the reverse sweep. Reused across
/// evaluations via [`Tape::reset`] to amortize allocations.
#[derive(Debug, Default)]
pub struct Tape {
    vals: Vec<f64>,
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clears the tape, keeping allocations.
    pub fn reset(&mut self) {
        self.vals.clear();
        self.nodes.clear();
    }

    /// Current value of a variable.
    pub fn val(&self, x: Var) -> f64 {
        self.vals[x.0 as usize]
    }

    /// A leaf (input or constant); gradients w.r.t. leaves are read back by
    /// index after the backward sweep.
    pub fn leaf(&mut self, v: f64) -> Var {
        self.push(v, NONE, 0.0, NONE, 0.0)
    }

    fn push(&mut self, v: f64, p0: u32, d0: f64, p1: u32, d1: f64) -> Var {
        let id = self.vals.len() as u32;
        self.vals.push(v);
        self.nodes.push(Node { p0, d0, p1, d1 });
        Var(id)
    }

    /// `a + b`
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a) + self.val(b);
        self.push(v, a.0, 1.0, b.0, 1.0)
    }

    /// `a - b`
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a) - self.val(b);
        self.push(v, a.0, 1.0, b.0, -1.0)
    }

    /// `a * b`
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.val(a), self.val(b));
        self.push(va * vb, a.0, vb, b.0, va)
    }

    /// `a / b`
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.val(a), self.val(b));
        self.push(va / vb, a.0, 1.0 / vb, b.0, -va / (vb * vb))
    }

    /// `c * a`
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = c * self.val(a);
        self.push(v, a.0, c, NONE, 0.0)
    }

    /// `a + c`
    pub fn add_const(&mut self, a: Var, c: f64) -> Var {
        let v = self.val(a) + c;
        self.push(v, a.0, 1.0, NONE, 0.0)
    }

    /// `ln a`
    pub fn ln(&mut self, a: Var) -> Var {
        let va = self.val(a);
        self.push(va.ln(), a.0, 1.0 / va, NONE, 0.0)
    }

    /// `2^a`
    pub fn exp2(&mut self, a: Var) -> Var {
        let v = self.val(a).exp2();
        self.push(v, a.0, v * std::f64::consts::LN_2, NONE, 0.0)
    }

    /// `max(a, b)` with the subgradient following the winning side (ties go
    /// to `a`, matching `f64::max`'s left bias under equality).
    pub fn max(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.val(a), self.val(b));
        if va >= vb {
            self.push(va, a.0, 1.0, NONE, 0.0)
        } else {
            self.push(vb, b.0, 1.0, NONE, 0.0)
        }
    }

    /// `max(a, c)` for a constant `c`.
    pub fn max_const(&mut self, a: Var, c: f64) -> Var {
        let va = self.val(a);
        if va >= c {
            self.push(va, a.0, 1.0, NONE, 0.0)
        } else {
            self.push(c, NONE, 0.0, NONE, 0.0)
        }
    }

    /// `min(a, c)` for a constant `c`.
    pub fn min_const(&mut self, a: Var, c: f64) -> Var {
        let va = self.val(a);
        if va <= c {
            self.push(va, a.0, 1.0, NONE, 0.0)
        } else {
            self.push(c, NONE, 0.0, NONE, 0.0)
        }
    }

    /// `clamp(a, lo, hi)` — slope 1 strictly inside, 0 outside.
    pub fn clamp(&mut self, a: Var, lo: f64, hi: f64) -> Var {
        let m = self.max_const(a, lo);
        self.min_const(m, hi)
    }

    /// The C¹ smoothstep `3x² - 2x³` of `clamp(a, 0, 1)`: exactly 0 below
    /// 0 and 1 above 1, with zero slope at both endpoints — the gate that
    /// keeps relaxed indicators exact (value *and* gradient) on the lattice.
    pub fn smoothstep01(&mut self, a: Var) -> Var {
        let c = self.clamp(a, 0.0, 1.0);
        let c2 = self.mul(c, c);
        let lin = self.scale(c, -2.0);
        let lin3 = self.add_const(lin, 3.0);
        self.mul(c2, lin3)
    }

    /// Reverse sweep from `out`; returns `∂out/∂leaf` for the first
    /// `n_inputs` variables pushed onto the tape.
    pub fn grad(&self, out: Var, n_inputs: usize) -> Vec<f64> {
        let mut adj = vec![0.0f64; self.vals.len()];
        adj[out.0 as usize] = 1.0;
        for i in (0..self.nodes.len()).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let n = self.nodes[i];
            if n.p0 != NONE {
                adj[n.p0 as usize] += a * n.d0;
            }
            if n.p1 != NONE {
                adj[n.p1 as usize] += a * n.d1;
            }
        }
        adj.truncate(n_inputs);
        adj
    }
}

/// The relaxed cost at a point of feature space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothCost {
    /// Relaxed latency (cycles).
    pub latency_cycles: f64,
    /// Relaxed energy (µJ).
    pub energy_uj: f64,
}

impl SmoothCost {
    /// Energy-delay product, comparable to [`Cost::edp`].
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_uj
    }

    /// As an exact-model [`Cost`] (for reporting only).
    pub fn as_cost(&self) -> Cost {
        Cost::new(self.latency_cycles.max(0.0), self.energy_uj.max(0.0))
    }
}

/// Differentiable twin of [`AnalysisContext`]: shares its precomputed
/// per-(problem, arch, density, caps) invariants and evaluates the relaxed
/// cost (with gradients) at arbitrary points of feature space.
#[derive(Debug, Clone)]
pub struct SmoothContext {
    ctx: AnalysisContext,
    d: usize,
    nl: usize,
}

impl SmoothContext {
    /// Builds a relaxed context. Capacity is always treated softly (the
    /// spill factor `max(1, needed/cap)`), which equals the exact engine on
    /// legal mappings and keeps the relaxation finite off-lattice.
    pub fn new(problem: &Problem, arch: &Arch, density: Density, caps: &SparseCaps) -> Self {
        let ctx = AnalysisContext::new(problem, arch, density, caps, crate::CapacityMode::Soft);
        let d = problem.num_dims();
        let nl = arch.num_levels();
        SmoothContext { ctx, d, nl }
    }

    /// The dense special case (the default DOSA search objective).
    pub fn dense(problem: &Problem, arch: &Arch) -> Self {
        SmoothContext::new(problem, arch, Density::DENSE, &SparseCaps::none())
    }

    /// Shares an existing exact context's invariants.
    pub fn from_context(ctx: &AnalysisContext) -> Self {
        let d = ctx.problem().num_dims();
        let nl = ctx.arch().num_levels();
        SmoothContext { ctx: ctx.clone(), d, nl }
    }

    /// The workload this context is bound to.
    pub fn problem(&self) -> &Problem {
        self.ctx.problem()
    }

    /// The accelerator this context is bound to.
    pub fn arch(&self) -> &Arch {
        self.ctx.arch()
    }

    /// Expected feature-vector length.
    pub fn feature_len(&self) -> usize {
        mapping::features::feature_len(self.d, self.nl)
    }

    /// Relaxed cost at `feats` (no gradient).
    pub fn cost(&self, feats: &[f64]) -> SmoothCost {
        let mut tape = Tape::new();
        let (_, lat, en) = self.build(feats, &mut tape);
        SmoothCost { latency_cycles: tape.val(lat), energy_uj: tape.val(en) }
    }

    /// Relaxed cost plus the reverse-mode gradient of `ln EDP` w.r.t. every
    /// feature. `ln EDP` (rather than raw EDP) keeps step sizes scale-free:
    /// its gradient is invariant to the astronomic magnitudes EDP reaches
    /// on large workloads.
    pub fn cost_and_grad(&self, feats: &[f64]) -> (SmoothCost, Vec<f64>) {
        let mut tape = Tape::new();
        self.cost_and_grad_with(feats, &mut tape)
    }

    /// [`SmoothContext::cost_and_grad`] against a caller-owned tape
    /// (cleared and refilled), so tight descent loops reuse allocations.
    pub fn cost_and_grad_with(&self, feats: &[f64], tape: &mut Tape) -> (SmoothCost, Vec<f64>) {
        tape.reset();
        let (log_edp, lat, en) = self.build(feats, tape);
        let g = tape.grad(log_edp, feats.len());
        (SmoothCost { latency_cycles: tape.val(lat), energy_uj: tape.val(en) }, g)
    }

    /// Decodes the *hard* (discrete) part of a feature point: factors
    /// rounded in log space, loop orders by argsort of the position
    /// features. Used for the piecewise-constant style classification; at
    /// lattice points it reproduces the encoded mapping exactly.
    fn hard_decode(&self, feats: &[f64]) -> Mapping {
        let (d, nl) = (self.d, self.nl);
        let at = |li: usize, dim: usize, k: usize| feats[(li * d + dim) * 3 + k];
        let levels: Vec<LevelMapping> = (0..nl)
            .map(|li| {
                let mut level = LevelMapping::unit(d);
                for dim in 0..d {
                    level.temporal[dim] = (at(li, dim, 0).exp2().round() as u64).max(1);
                    level.spatial[dim] = (at(li, dim, 1).exp2().round() as u64).max(1);
                }
                let mut idx: Vec<usize> = (0..d).collect();
                idx.sort_by(|&a, &b| {
                    at(li, a, 2)
                        .partial_cmp(&at(li, b, 2))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                level.order = idx;
                level
            })
            .collect();
        Mapping::new(levels)
    }

    /// Builds the full relaxed pipeline on `tape`; returns
    /// `(ln EDP, latency, energy_µJ)`.
    fn build(&self, feats: &[f64], tape: &mut Tape) -> (Var, Var, Var) {
        let (d, nl) = (self.d, self.nl);
        assert_eq!(feats.len(), self.feature_len(), "feature vector length mismatch");
        let ctx = &self.ctx;
        let arch = ctx.arch();
        let problem = ctx.problem();
        let caps = *ctx.caps();
        let density = ctx.density();
        let occ = ctx.occupancy;
        let tensors = problem.tensors();
        let denom = (d.max(2) - 1) as f64;

        // Inputs first (gradients are read back by leaf index).
        let x: Vec<Var> = feats.iter().map(|&f| tape.leaf(f)).collect();
        let tf = |li: usize, dim: usize| x[(li * d + dim) * 3];
        let sf = |li: usize, dim: usize| x[(li * d + dim) * 3 + 1];
        let pf = |li: usize, dim: usize| x[(li * d + dim) * 3 + 2];

        let one = tape.leaf(1.0);
        let zero = tape.leaf(0.0);

        // Continuous tile factors 2^feature, per (level, dim).
        let mut bt = vec![vec![one; d]; nl];
        let mut bs = vec![vec![one; d]; nl];
        // Soft non-unit gate ν and unnormalized loop position, temporal loops.
        let mut nu = vec![vec![zero; d]; nl];
        let mut posu = vec![vec![zero; d]; nl];
        for li in 0..nl {
            for dim in 0..d {
                bt[li][dim] = tape.exp2(tf(li, dim));
                bs[li][dim] = tape.exp2(sf(li, dim));
                nu[li][dim] = tape.smoothstep01(tf(li, dim));
                posu[li][dim] = tape.scale(pf(li, dim), denom);
            }
        }

        // Tile extents per level (level nl = the unit register tile).
        let mut ext = vec![vec![one; d]; nl + 1];
        for li in (0..nl).rev() {
            for dim in 0..d {
                let f = tape.mul(bt[li][dim], bs[li][dim]);
                ext[li][dim] = tape.mul(ext[li + 1][dim], f);
            }
        }

        let footprint = |tape: &mut Tape, e: &[Var], proj: &problem::Projection| -> Var {
            let mut f = one;
            for t in proj.terms() {
                let coord = match *t {
                    ProjTerm::Single(dd) => e[dd],
                    ProjTerm::Window { base, window } => {
                        let s = tape.add(e[base], e[window]);
                        tape.add_const(s, -1.0)
                    }
                };
                f = tape.mul(f, coord);
            }
            f
        };

        // Soft spill factor per level with a capacity.
        let mut sp: Vec<Option<Var>> = vec![None; nl];
        for li in 0..nl {
            let Some(cap) = arch.level(li).capacity_words else { continue };
            let mut needed = zero;
            for (t, s) in tensors.iter().zip(&ctx.cap_scale) {
                let f = footprint(tape, &ext[li], &t.projection);
                let scaled = tape.scale(f, *s);
                needed = tape.add(needed, scaled);
            }
            let ratio = tape.scale(needed, 1.0 / cap as f64);
            sp[li] = Some(tape.max_const(ratio, 1.0));
        }

        // Partial-output density at given extents (see `out_density_at`).
        let out_density = |tape: &mut Tape, e: &[Var]| -> Var {
            if occ >= 1.0 {
                return one;
            }
            let mut red = one;
            for &dd in &ctx.reduction_dims {
                red = tape.mul(red, e[dd]);
            }
            // (1-occ)^red = 2^(red·log2(1-occ)); occ < 1 here.
            let exponent = tape.scale(red, (1.0 - occ).log2());
            let pw = tape.exp2(exponent);
            let dens = {
                let neg = tape.scale(pw, -1.0);
                tape.add_const(neg, 1.0)
            };
            tape.clamp(dens, occ.min(1.0), 1.0)
        };
        let compress = |tape: &mut Tape, dv: Var| -> Var {
            if caps.compressed {
                let s = tape.scale(dv, 1.0 + caps.metadata_per_nnz);
                tape.min_const(s, 1.0)
            } else {
                one
            }
        };

        // Traffic accumulation, boundary-major, tensors in canonical order —
        // mirroring `AnalysisContext::analyze`.
        let mut reads = vec![zero; nl];
        let mut writes = vec![zero; nl];
        for i in 1..=nl {
            let ext_i: Vec<Var> = ext[i].clone();
            let sp_i = if i < nl { sp[i] } else { None };
            for (ti, t) in tensors.iter().enumerate() {
                let mask = ctx.relevance[ti];
                let rel = |dd: usize| mask & (1 << dd) != 0;

                // Refetch multiplicities over the loops outside level i.
                let mut read = one;
                let mut write_extra = one; // irrelevant spatial (multicast)
                let mut distinct = one;
                for lv in 0..i {
                    for dd in 0..d {
                        if rel(dd) {
                            read = tape.mul(read, bt[lv][dd]);
                            read = tape.mul(read, bs[lv][dd]);
                            distinct = tape.mul(distinct, bt[lv][dd]);
                            distinct = tape.mul(distinct, bs[lv][dd]);
                        } else {
                            write_extra = tape.mul(write_extra, bs[lv][dd]);
                            // Relaxed stationarity: this irrelevant temporal
                            // loop refetches iff some relevant non-unit
                            // temporal loop runs strictly inside it.
                            let mut keep = one;
                            for rlv in lv..i {
                                for rd in 0..d {
                                    if !rel(rd) {
                                        continue;
                                    }
                                    let w = if rlv > lv {
                                        nu[rlv][rd]
                                    } else {
                                        // Same level: position gap gate.
                                        let g = tape.sub(posu[rlv][rd], posu[lv][dd]);
                                        let g1 = tape.add_const(g, 1.0);
                                        let gh = tape.scale(g1, 0.5);
                                        let h = tape.smoothstep01(gh);
                                        tape.mul(h, nu[rlv][rd])
                                    };
                                    let term = tape.sub(one, w);
                                    keep = tape.mul(keep, term);
                                }
                            }
                            let evict = tape.sub(one, keep);
                            // b^evict = 2^(evict · log2 b).
                            let ex = tape.mul(evict, tf(lv, dd));
                            let pw = tape.exp2(ex);
                            read = tape.mul(read, pw);
                        }
                    }
                }
                let write = tape.mul(read, write_extra);

                let f = footprint(tape, &ext_i, &t.projection);
                let mut base = match t.kind {
                    TensorKind::Output => {
                        let dv = out_density(tape, &ext_i);
                        let sc = compress(tape, dv);
                        tape.mul(f, sc)
                    }
                    _ if i == nl && caps.skipping => tape.scale(f, occ.min(ctx.scale[ti])),
                    _ => tape.scale(f, ctx.scale[ti]),
                };
                if let Some(spv) = sp_i {
                    base = tape.mul(base, spv);
                }
                match t.kind {
                    TensorKind::Input | TensorKind::Weight => {
                        let parent_reads = tape.mul(read, base);
                        reads[i - 1] = tape.add(reads[i - 1], parent_reads);
                        if i < nl {
                            let child_writes = tape.mul(write, base);
                            writes[i] = tape.add(writes[i], child_writes);
                        }
                    }
                    TensorKind::Output => {
                        let drains = tape.mul(read, base);
                        let rd = tape.sub(read, distinct);
                        let rmult = tape.max_const(rd, 0.0);
                        let refills = tape.mul(rmult, base);
                        reads[i - 1] = tape.add(reads[i - 1], refills);
                        writes[i - 1] = tape.add(writes[i - 1], drains);
                        if i < nl {
                            reads[i] = tape.add(reads[i], drains);
                            writes[i] = tape.add(writes[i], refills);
                        }
                    }
                }
            }
        }

        // Datapath + style constants (piecewise constant in the features).
        let macs = ctx.macs;
        let style = crate::style::classify_masked(ctx.reduction_mask, &self.hard_decode(feats));
        let style_work = match style {
            ProductStyle::Inner => {
                caps.intersection_cost * macs * density.weight.max(density.input)
            }
            ProductStyle::Outer => (caps.merge_overhead - 1.0).max(0.0) * macs * occ,
        };
        let cycle_macs = if caps.skipping { macs * occ } else { macs };
        let energy_macs = if caps.skipping || caps.gating { macs * occ } else { macs };

        // lanes = product of every spatial factor = 2^(Σ spatial features).
        let mut ssum = zero;
        for li in 0..nl {
            for dim in 0..d {
                ssum = tape.add(ssum, sf(li, dim));
            }
        }
        let lanes = tape.exp2(ssum);
        let work = tape.leaf(cycle_macs + style_work);
        let compute_cycles = tape.div(work, lanes);

        let innermost_energy = arch.level(nl - 1).energy_per_access;
        let mut energy =
            tape.leaf(style_work * innermost_energy + energy_macs * arch.mac_energy);
        let mut totals = Vec::with_capacity(nl);
        for li in 0..nl {
            let tot = tape.add(reads[li], writes[li]);
            totals.push(tot);
            let e = tape.scale(tot, arch.level(li).energy_per_access);
            energy = tape.add(energy, e);
        }

        // Bandwidth roofline; `active` replicates bandwidth across spatial
        // instances exactly as the exact engine does.
        let mut active = one;
        let mut bw_max = zero;
        for (li, &tot) in totals.iter().enumerate() {
            let denom_v = tape.scale(active, arch.level(li).bandwidth);
            let bw = tape.div(tot, denom_v);
            bw_max = tape.max(bw_max, bw);
            let mut s_li = zero;
            for dim in 0..d {
                s_li = tape.add(s_li, sf(li, dim));
            }
            let spread = tape.exp2(s_li);
            active = tape.mul(active, spread);
        }

        let lat0 = tape.max(compute_cycles, bw_max);
        let latency = tape.max_const(lat0, 1.0);
        let energy_uj = tape.scale(energy, 1e-6);
        let l1 = tape.ln(latency);
        let l2 = tape.ln(energy_uj);
        let log_edp = tape.add(l1, l2);
        (log_edp, latency, energy_uj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::CapacityMode;
    use mapping::MapSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tape_basics() {
        let mut t = Tape::new();
        let a = t.leaf(3.0);
        let b = t.leaf(4.0);
        let p = t.mul(a, b);
        let q = t.add(p, a); // 3*4 + 3 = 15
        assert_eq!(t.val(q), 15.0);
        let g = t.grad(q, 2);
        assert_eq!(g, vec![5.0, 3.0]); // d/da = b + 1, d/db = a
    }

    #[test]
    fn tape_exp2_ln_grads() {
        let mut t = Tape::new();
        let a = t.leaf(3.0);
        let e = t.exp2(a);
        let l = t.ln(e); // = a·ln2
        let g = t.grad(l, 1);
        assert!((g[0] - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn smoothstep_is_flat_at_endpoints() {
        let mut t = Tape::new();
        for (v, want) in [(-0.5, 0.0), (0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (2.0, 1.0)] {
            let a = t.leaf(v);
            let s = t.smoothstep01(a);
            assert!((t.val(s) - want).abs() < 1e-12, "smoothstep({v})");
        }
        // Zero slope at the lattice gates.
        let mut t = Tape::new();
        let a = t.leaf(1.0);
        let s = t.smoothstep01(a);
        assert_eq!(t.grad(s, 1)[0], 0.0);
    }

    #[test]
    fn matches_exact_on_random_legal_mappings() {
        let p = Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3);
        let a = Arch::accel_b();
        let sctx = SmoothContext::dense(&p, &a);
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..40 {
            let m = space.random(&mut rng);
            let exact = analyze(&p, &a, &m, Density::DENSE, &SparseCaps::none(), CapacityMode::Strict)
                .expect("legal");
            let feats = mapping::features::features(&m);
            let sm = sctx.cost(&feats);
            let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1e-30);
            assert!(
                rel(sm.latency_cycles, exact.cost.latency_cycles) < 1e-6,
                "latency {} vs {}",
                sm.latency_cycles,
                exact.cost.latency_cycles
            );
            assert!(
                rel(sm.energy_uj, exact.cost.energy_uj) < 1e-6,
                "energy {} vs {}",
                sm.energy_uj,
                exact.cost.energy_uj
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference_off_lattice() {
        let p = Problem::gemm("g", 2, 16, 32, 16);
        let a = Arch::accel_b();
        let sctx = SmoothContext::dense(&p, &a);
        let space = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(11);
        let m = space.random(&mut rng);
        let mut feats = mapping::features::features(&m);
        // Nudge strictly off-lattice so no gate sits on a kink.
        for (i, f) in feats.iter_mut().enumerate() {
            *f += 0.07 + 0.013 * (i % 5) as f64;
        }
        let (_, g) = sctx.cost_and_grad(&feats);
        let eps = 1e-6;
        for i in 0..feats.len() {
            let mut fp = feats.clone();
            fp[i] += eps;
            let mut fm = feats.clone();
            fm[i] -= eps;
            let up = sctx.cost(&fp).edp().ln();
            let dn = sctx.cost(&fm).edp().ln();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (g[i] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "feature {i}: analytic {} vs numeric {numeric}",
                g[i]
            );
        }
    }
}
