//! Analytical NPU cost model (the paper's "Evaluation Method", §3.2).
//!
//! A from-scratch reimplementation of the class of models the paper uses:
//! Timeloop for dense workloads ([`DenseModel`]) and Sparseloop /
//! TimeloopV2 for sparse ones ([`SparseModel`]). Given a
//! [`problem::Problem`], an [`arch::Arch`], and a [`mapping::Mapping`], the
//! model returns latency, energy, and EDP in milliseconds of compute — fast
//! enough to sit inside a mapper's optimization loop.
//!
//! # Example
//!
//! ```
//! use costmodel::{CostModel, DenseModel};
//! use mapping::MapSpace;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let problem = problem::zoo::resnet_conv4();
//! let arch = arch::Arch::accel_b();
//! let model = DenseModel::new(problem.clone(), arch.clone());
//! let space = MapSpace::new(problem, arch);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let cost = model.evaluate(&space.random(&mut rng))?;
//! assert!(cost.edp() > 0.0);
//! # Ok::<(), mapping::MappingError>(())
//! ```

mod analysis;
mod cost;
mod delta;
mod engine;
pub mod fault;
pub mod guard;
pub mod smooth;
pub mod style;

pub use analysis::{analyze, AnalysisContext, BoundReport, Breakdown, CapacityMode, LevelTraffic};
pub use cost::Cost;
pub use delta::DeltaContext;
pub use engine::{CostModel, DenseModel, SparseModel};
pub use fault::{FaultConfig, FaultyModel, InjectedFault};
pub use guard::{
    GuardAudit, GuardConfig, GuardPolicy, GuardReport, GuardedModel, Invariant,
    InvariantViolation,
};
pub use smooth::{SmoothContext, SmoothCost};
