//! Guarded evaluation: physical-invariant checking on every cost-model call.
//!
//! The search methodology (and every regenerated figure) assumes the
//! analytical model is trustworthy. [`GuardedModel`] is a decorator that
//! re-derives cheap *lower bounds* and conservation laws from the problem,
//! architecture, and mapping alone, and cross-checks the model's
//! [`Breakdown`] against them on every evaluation:
//!
//! * **finite-cost / finite-traffic** — latency, energy, per-level traffic,
//!   and all breakdown scalars are finite and non-negative.
//! * **breakdown-shape** — per-level vectors match the hierarchy depth.
//! * **mac-conservation** — per dimension, the product of all tile factors
//!   equals the problem bound, and the reported dense MAC count equals the
//!   product of all bounds (no work appears or vanishes).
//! * **capacity-overflow** — per level, the resident tile footprint fits the
//!   buffer (scaled by the reported spill factor under soft capacity).
//! * **compulsory-traffic** — outermost-level reads cover each non-output
//!   tensor at least once (the cold-miss lower bound).
//! * **compute-latency-floor** — latency is at least the surviving MACs
//!   divided by every lane the chip has.
//! * **mac-energy-floor** — energy is at least the surviving MACs times the
//!   per-MAC energy.
//! * **non-determinism** — a periodic spot-check re-evaluates the same
//!   mapping and requires bit-identical cost.
//!
//! The bounds are sound for both the dense and sparse engines: a sparse
//! evaluation scales the floors by the joint operand occupancy
//! (`d_weight × d_input`), which lower-bounds every per-tensor traffic,
//! cycle, and energy scale the engine can legitimately apply (compression,
//! gating, and skipping included). Guards therefore never reject a legal,
//! correctly-costed mapping; what they reject is a model whose output is
//! *physically impossible* for the mapping it claims to describe.
//!
//! What happens on a violation is set by [`GuardPolicy`]: `Reject` turns the
//! evaluation into [`MappingError::GuardRejected`] (quarantining the mapping
//! — mappers treat it as illegal, so it can never become the incumbent),
//! `Warn` records it and passes the result through, `Trust` skips checking.

use crate::analysis::Breakdown;
use crate::cost::Cost;
use crate::engine::CostModel;
use arch::SparseCaps;
use mapping::{Mapping, MappingError};
use problem::{Density, TensorKind};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum violations retained in the in-memory audit log; counters keep
/// counting past this.
const LOG_CAP: usize = 64;

/// The physical invariants [`GuardedModel`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Latency/energy/EDP must be finite and non-negative.
    FiniteCost,
    /// Traffic, cycle, and datapath scalars must be finite and non-negative.
    FiniteTraffic,
    /// Per-level breakdown vectors must match the hierarchy depth.
    BreakdownShape,
    /// Tile factors must multiply to the problem bounds; the dense MAC count
    /// must equal the product of all bounds.
    MacConservation,
    /// Resident tiles must fit their buffers (× the reported spill factor).
    CapacityOverflow,
    /// Outermost-level reads must cover each non-output tensor once.
    CompulsoryTraffic,
    /// Latency ≥ surviving MACs / total chip lanes.
    ComputeLatencyFloor,
    /// Energy ≥ surviving MACs × per-MAC energy.
    MacEnergyFloor,
    /// Re-evaluating the same mapping must give bit-identical cost.
    NonDeterminism,
}

impl Invariant {
    /// Stable kebab-case identifier used in reports and errors.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::FiniteCost => "finite-cost",
            Invariant::FiniteTraffic => "finite-traffic",
            Invariant::BreakdownShape => "breakdown-shape",
            Invariant::MacConservation => "mac-conservation",
            Invariant::CapacityOverflow => "capacity-overflow",
            Invariant::CompulsoryTraffic => "compulsory-traffic",
            Invariant::ComputeLatencyFloor => "compute-latency-floor",
            Invariant::MacEnergyFloor => "mac-energy-floor",
            Invariant::NonDeterminism => "non-determinism",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed invariant violation: which invariant, at which storage level
/// (if level-specific), and the observed vs. required values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantViolation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Storage level (outermost = 0) for per-level invariants.
    pub level: Option<usize>,
    /// The value the model reported.
    pub observed: f64,
    /// The bound it had to satisfy.
    pub bound: f64,
}

impl InvariantViolation {
    /// Converts into the quarantining [`MappingError`].
    pub fn to_error(&self) -> MappingError {
        MappingError::GuardRejected {
            invariant: self.invariant.name().to_string(),
            level: self.level,
            observed: self.observed,
            bound: self.bound,
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated", self.invariant)?;
        if let Some(l) = self.level {
            write!(f, " at level {l}")?;
        }
        write!(f, ": observed {:.6e}, bound {:.6e}", self.observed, self.bound)
    }
}

/// What to do when an evaluation violates an invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// Fail the evaluation with [`MappingError::GuardRejected`]: the mapping
    /// is quarantined (mappers treat it as illegal) and can never poison the
    /// incumbent. The default.
    #[default]
    Reject,
    /// Record the violation but pass the model's result through.
    Warn,
    /// Skip all checks (counts evaluations only).
    Trust,
}

/// Guard configuration: the policy plus the soundness floors.
///
/// Floors default to dense semantics ([`GuardConfig::new`]); sparse models
/// must use [`GuardConfig::sparse`], which relaxes the floors by the operand
/// occupancy so that compression/gating/skipping savings are never flagged.
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Violation handling.
    pub policy: GuardPolicy,
    /// Sound scale on the traffic/latency/energy floors: 1.0 dense, the
    /// joint operand occupancy (`d_weight × d_input`) sparse.
    pub density_floor: f64,
    /// Scale applied to *weight* footprints in the capacity check (weights
    /// may be provisioned compressed; activations are provisioned dense).
    pub weight_capacity_floor: f64,
    /// Re-evaluate every Nth call and require bit-identical cost
    /// (0 disables the determinism spot-check).
    pub spot_check_every: u64,
    /// Relative tolerance applied to every floor/ceiling comparison.
    pub rel_tol: f64,
}

impl GuardConfig {
    /// Dense-model configuration: exact floors.
    pub fn new(policy: GuardPolicy) -> Self {
        GuardConfig {
            policy,
            density_floor: 1.0,
            weight_capacity_floor: 1.0,
            spot_check_every: 64,
            rel_tol: 1e-6,
        }
    }

    /// Sparse-model configuration: floors relaxed by the operand occupancy,
    /// weight capacity provisioned compressed exactly as the engine does.
    pub fn sparse(policy: GuardPolicy, caps: &SparseCaps, density: Density) -> Self {
        let occupancy = (density.weight * density.input).clamp(0.0, 1.0);
        let weight_capacity_floor = if caps.compressed {
            (density.weight * (1.0 + caps.metadata_per_nnz)).min(1.0)
        } else {
            1.0
        };
        GuardConfig {
            policy,
            density_floor: occupancy,
            weight_capacity_floor,
            ..GuardConfig::new(policy)
        }
    }
}

/// Aggregate guard statistics plus the most recent violations.
#[derive(Debug, Clone, Default)]
pub struct GuardReport {
    /// Total evaluations seen (all policies).
    pub evaluations: u64,
    /// Total invariant violations observed.
    pub violations: u64,
    /// Evaluations rejected (policy [`GuardPolicy::Reject`] only).
    pub rejections: u64,
    /// Up to the first `LOG_CAP` violations, in observation order.
    pub recent: Vec<InvariantViolation>,
}

/// Read-side interface to a guard's audit state, object-safe so runtimes can
/// consume it without knowing the wrapped model type.
pub trait GuardAudit: Sync {
    /// Snapshot of counters and the retained violation log.
    fn report(&self) -> GuardReport;

    /// Drains and returns the retained violation log (counters are kept).
    fn take_violations(&self) -> Vec<InvariantViolation>;
}

/// A [`CostModel`] decorator that checks physical invariants on every
/// evaluation (see the [module docs](self) for the invariant list).
#[derive(Debug)]
pub struct GuardedModel<M: CostModel> {
    inner: M,
    config: GuardConfig,
    evaluations: AtomicU64,
    violations: AtomicU64,
    rejections: AtomicU64,
    log: Mutex<Vec<InvariantViolation>>,
}

impl<M: CostModel> GuardedModel<M> {
    /// Wraps `inner` with the given configuration.
    pub fn new(inner: M, config: GuardConfig) -> Self {
        GuardedModel {
            inner,
            config,
            evaluations: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Dense-floor guard with the given policy (see [`GuardConfig::new`]).
    pub fn dense(inner: M, policy: GuardPolicy) -> Self {
        GuardedModel::new(inner, GuardConfig::new(policy))
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Unwraps, discarding the audit state.
    pub fn into_inner(self) -> M {
        self.inner
    }

    fn record(&self, found: &[InvariantViolation]) {
        self.violations.fetch_add(found.len() as u64, Ordering::Relaxed);
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        for v in found {
            if log.len() >= LOG_CAP {
                break;
            }
            log.push(*v);
        }
    }

    /// Runs every invariant check against one breakdown. Returns all
    /// violations found (empty = the evaluation is physically plausible).
    fn check(&self, m: &Mapping, b: &Breakdown) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let cfg = &self.config;
        let problem = self.inner.problem();
        let arch = self.inner.arch();
        let nl = arch.num_levels();
        let tol = cfg.rel_tol;

        let bad = |x: f64| !x.is_finite() || x < 0.0;

        // finite-cost.
        for x in [b.cost.latency_cycles, b.cost.energy_uj, b.cost.edp()] {
            if bad(x) {
                out.push(InvariantViolation {
                    invariant: Invariant::FiniteCost,
                    level: None,
                    observed: x,
                    bound: 0.0,
                });
                break;
            }
        }

        // breakdown-shape: everything below indexes per-level vectors, so a
        // malformed shape short-circuits the remaining checks.
        for len in [b.per_level.len(), b.bw_cycles.len(), b.spill.len()] {
            if len != nl {
                out.push(InvariantViolation {
                    invariant: Invariant::BreakdownShape,
                    level: None,
                    observed: len as f64,
                    bound: nl as f64,
                });
                return out;
            }
        }

        // finite-traffic.
        'finite: for (li, t) in b.per_level.iter().enumerate() {
            for x in [t.reads, t.writes, b.bw_cycles[li], b.spill[li]] {
                if bad(x) {
                    out.push(InvariantViolation {
                        invariant: Invariant::FiniteTraffic,
                        level: Some(li),
                        observed: x,
                        bound: 0.0,
                    });
                    break 'finite;
                }
            }
        }
        for x in [b.macs, b.cycle_macs, b.energy_macs, b.style_work, b.lanes, b.compute_cycles]
        {
            if bad(x) {
                out.push(InvariantViolation {
                    invariant: Invariant::FiniteTraffic,
                    level: None,
                    observed: x,
                    bound: 0.0,
                });
                break;
            }
        }

        // mac-conservation: factor products per dimension, then the dense
        // MAC count itself.
        let macs = problem.total_macs() as f64;
        if m.num_levels() == nl && m.num_dims() == problem.num_dims() {
            for dim in 0..problem.num_dims() {
                let product: u64 = m
                    .levels()
                    .iter()
                    .map(|l| l.temporal[dim] * l.spatial[dim])
                    .product();
                if product != problem.bound(dim) {
                    out.push(InvariantViolation {
                        invariant: Invariant::MacConservation,
                        level: None,
                        observed: product as f64,
                        bound: problem.bound(dim) as f64,
                    });
                    break;
                }
            }
        }
        if (b.macs - macs).abs() > macs * tol {
            out.push(InvariantViolation {
                invariant: Invariant::MacConservation,
                level: None,
                observed: b.macs,
                bound: macs,
            });
        }

        // capacity-overflow: dense footprints (weights may be provisioned
        // compressed), permitted to exceed capacity only by the spill factor
        // the model itself reported (soft capacity).
        if m.num_levels() == nl {
            for li in 0..nl {
                let Some(cap) = arch.level(li).capacity_words else { continue };
                let needed: f64 = problem
                    .tensors()
                    .iter()
                    .zip(m.footprints(problem, li))
                    .map(|(t, f)| match t.kind {
                        TensorKind::Weight => f * cfg.weight_capacity_floor,
                        TensorKind::Input | TensorKind::Output => f,
                    })
                    .sum();
                let allowed = cap as f64 * b.spill[li].max(1.0);
                if needed > allowed * (1.0 + tol) {
                    out.push(InvariantViolation {
                        invariant: Invariant::CapacityOverflow,
                        level: Some(li),
                        observed: needed,
                        bound: allowed,
                    });
                }
            }
        }

        // compulsory-traffic: the outermost level must source each
        // non-output tensor at least once (scaled by the occupancy floor).
        if m.num_levels() == nl {
            let full: f64 = problem
                .tensors()
                .iter()
                .zip(m.footprints(problem, 0))
                .filter(|(t, _)| t.kind != TensorKind::Output)
                .map(|(_, f)| f)
                .sum();
            let floor = full * cfg.density_floor;
            if b.per_level[0].reads < floor * (1.0 - tol) {
                out.push(InvariantViolation {
                    invariant: Invariant::CompulsoryTraffic,
                    level: Some(0),
                    observed: b.per_level[0].reads,
                    bound: floor,
                });
            }
        }

        // compute-latency-floor: even with perfect skipping and every lane
        // busy, surviving MACs take cycles (and latency is at least one).
        let lanes = arch.total_spatial_lanes() as f64;
        let latency_floor = (macs * cfg.density_floor / lanes).max(1.0);
        if b.cost.latency_cycles < latency_floor * (1.0 - tol) {
            out.push(InvariantViolation {
                invariant: Invariant::ComputeLatencyFloor,
                level: None,
                observed: b.cost.latency_cycles,
                bound: latency_floor,
            });
        }

        // mac-energy-floor (mac_energy is in pJ; energy in µJ).
        let energy_floor = macs * cfg.density_floor * arch.mac_energy * 1e-6;
        if b.cost.energy_uj < energy_floor * (1.0 - tol) {
            out.push(InvariantViolation {
                invariant: Invariant::MacEnergyFloor,
                level: None,
                observed: b.cost.energy_uj,
                bound: energy_floor,
            });
        }

        out
    }

    /// Post-evaluation guard sequence for one item: invariant checks, the
    /// periodic determinism spot-check (keyed on the evaluation ordinal
    /// `n`), and policy handling. Shared verbatim by the one-shot, batched,
    /// and delta evaluation paths so accounting stays exact.
    fn guard_one(&self, m: &Mapping, b: Breakdown, n: u64) -> Result<Breakdown, MappingError> {
        if self.config.policy == GuardPolicy::Trust {
            return Ok(b);
        }
        let mut found = self.check(m, &b);
        let every = self.config.spot_check_every;
        if every > 0 && n.is_multiple_of(every) {
            if let Ok(again) = self.inner.evaluate_detailed(m) {
                let same = again.cost.latency_cycles.to_bits()
                    == b.cost.latency_cycles.to_bits()
                    && again.cost.energy_uj.to_bits() == b.cost.energy_uj.to_bits();
                if !same {
                    found.push(InvariantViolation {
                        invariant: Invariant::NonDeterminism,
                        level: None,
                        observed: again.cost.edp(),
                        bound: b.cost.edp(),
                    });
                }
            }
        }
        if found.is_empty() {
            return Ok(b);
        }
        self.record(&found);
        match self.config.policy {
            GuardPolicy::Warn => Ok(b),
            GuardPolicy::Trust => unreachable!("Trust returns before checking"),
            GuardPolicy::Reject => {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                Err(found[0].to_error())
            }
        }
    }
}

impl<M: CostModel> GuardAudit for GuardedModel<M> {
    fn report(&self) -> GuardReport {
        GuardReport {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            recent: self.log.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }

    fn take_violations(&self) -> Vec<InvariantViolation> {
        std::mem::take(&mut *self.log.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<M: CostModel> CostModel for GuardedModel<M> {
    fn problem(&self) -> &problem::Problem {
        self.inner.problem()
    }

    fn arch(&self) -> &arch::Arch {
        self.inner.arch()
    }

    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
        // Route through the detailed path so the full invariant set runs.
        self.evaluate_detailed(m).map(|b| b.cost)
    }

    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        let n = self.evaluations.fetch_add(1, Ordering::Relaxed);
        let b = self.inner.evaluate_detailed(m)?;
        self.guard_one(m, b, n)
    }

    fn evaluate_batch(&self, ms: &[Mapping]) -> Vec<Result<Cost, MappingError>> {
        self.evaluate_detailed_batch(ms).into_iter().map(|r| r.map(|b| b.cost)).collect()
    }

    fn evaluate_detailed_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        // Inner batch first (the SoA fast path), then the exact per-item
        // guard sequence: every item still counts one evaluation, runs the
        // full invariant set, and is eligible for the periodic determinism
        // spot-check (which re-evaluates through the one-shot path,
        // cross-validating the batch engine in production).
        let inner = self.inner.evaluate_detailed_batch(ms);
        ms.iter()
            .zip(inner)
            .map(|(m, r)| {
                let n = self.evaluations.fetch_add(1, Ordering::Relaxed);
                self.guard_one(m, r?, n)
            })
            .collect()
    }

    fn evaluate_neighbors(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Cost, MappingError>> {
        self.evaluate_neighbors_detailed(parent, neighbors)
            .into_iter()
            .map(|r| r.map(|b| b.cost))
            .collect()
    }

    fn evaluate_neighbors_detailed(
        &self,
        parent: &Mapping,
        neighbors: &[Mapping],
    ) -> Vec<Result<Breakdown, MappingError>> {
        let inner = self.inner.evaluate_neighbors_detailed(parent, neighbors);
        neighbors
            .iter()
            .zip(inner)
            .map(|(m, r)| {
                let n = self.evaluations.fetch_add(1, Ordering::Relaxed);
                self.guard_one(m, r?, n)
            })
            .collect()
    }

    fn cost_bound(&self, m: &Mapping) -> Option<Cost> {
        // The bound is analytical (independent of the wrapped model's
        // evaluation path) and only ever *skips* provably-dominated
        // candidates, so forwarding it cannot change what the guard would
        // accept; models without a bound (fault injectors) return None and
        // disable pruning entirely.
        self.inner.cost_bound(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DenseModel, SparseModel};
    use arch::Arch;
    use mapping::MapSpace;
    use problem::Problem;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn conv() -> Problem {
        Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3)
    }

    /// A model that corrupts one field of the true breakdown — the test
    /// double for "plausible but physically impossible" outputs.
    struct Corrupt<F: Fn(&mut Breakdown) + Sync> {
        inner: DenseModel,
        tweak: F,
    }

    impl<F: Fn(&mut Breakdown) + Sync> CostModel for Corrupt<F> {
        fn problem(&self) -> &Problem {
            self.inner.problem()
        }
        fn arch(&self) -> &Arch {
            self.inner.arch()
        }
        fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
            self.evaluate_detailed(m).map(|b| b.cost)
        }
        fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
            let mut b = self.inner.evaluate_detailed(m)?;
            (self.tweak)(&mut b);
            Ok(b)
        }
    }

    fn corrupt(tweak: impl Fn(&mut Breakdown) + Sync) -> Corrupt<impl Fn(&mut Breakdown) + Sync> {
        Corrupt { inner: DenseModel::new(conv(), Arch::accel_b()), tweak }
    }

    fn rejected_as(model: &impl CostModel, expect: &str) {
        let m = Mapping::trivial(&conv(), &Arch::accel_b());
        match model.evaluate(&m) {
            Err(MappingError::GuardRejected { invariant, .. }) => {
                assert_eq!(invariant, expect);
            }
            other => panic!("expected GuardRejected({expect}), got {other:?}"),
        }
    }

    #[test]
    fn legal_dense_samples_pass_reject_policy() {
        for arch in [Arch::accel_a(), Arch::accel_b()] {
            let model =
                GuardedModel::dense(DenseModel::new(conv(), arch.clone()), GuardPolicy::Reject);
            let space = MapSpace::new(conv(), arch);
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..100 {
                let m = space.random(&mut rng);
                model.evaluate_detailed(&m).expect("guard rejected a legal mapping");
            }
            let r = model.report();
            assert_eq!((r.violations, r.rejections), (0, 0));
            assert_eq!(r.evaluations, 100);
        }
    }

    #[test]
    fn legal_sparse_samples_pass_reject_policy() {
        let caps = SparseCaps::flexible();
        for dw in [1.0, 0.5, 0.1, 0.01] {
            let density = Density::weight_sparse(dw);
            let inner = SparseModel::new(conv(), Arch::accel_b(), caps, density);
            let cfg = GuardConfig::sparse(GuardPolicy::Reject, &caps, density);
            let model = GuardedModel::new(inner, cfg);
            let space = MapSpace::new(conv(), Arch::accel_b());
            let mut rng = SmallRng::seed_from_u64(5);
            for _ in 0..50 {
                let m = space.random(&mut rng);
                model.evaluate(&m).expect("guard rejected a legal sparse evaluation");
            }
            assert_eq!(model.report().violations, 0);
        }
    }

    #[test]
    fn nan_cost_caught_as_finite_cost() {
        let model = GuardedModel::dense(
            corrupt(|b| b.cost = Cost { latency_cycles: f64::NAN, energy_uj: 1.0 }),
            GuardPolicy::Reject,
        );
        rejected_as(&model, "finite-cost");
    }

    #[test]
    fn negative_traffic_caught_as_finite_traffic() {
        let model =
            GuardedModel::dense(corrupt(|b| b.per_level[1].reads = -4.0), GuardPolicy::Reject);
        rejected_as(&model, "finite-traffic");
    }

    #[test]
    fn truncated_breakdown_caught_as_shape() {
        let model = GuardedModel::dense(
            corrupt(|b| {
                b.per_level.pop();
            }),
            GuardPolicy::Reject,
        );
        rejected_as(&model, "breakdown-shape");
    }

    #[test]
    fn mac_undercount_caught() {
        let model = GuardedModel::dense(corrupt(|b| b.macs *= 0.5), GuardPolicy::Reject);
        rejected_as(&model, "mac-conservation");
    }

    #[test]
    fn vanished_dram_reads_caught_as_compulsory_traffic() {
        let model = GuardedModel::dense(
            corrupt(|b| b.per_level[0].reads *= 1e-6),
            GuardPolicy::Reject,
        );
        rejected_as(&model, "compulsory-traffic");
    }

    #[test]
    fn too_fast_caught_as_latency_floor() {
        let model = GuardedModel::dense(
            corrupt(|b| b.cost.latency_cycles = 0.5),
            GuardPolicy::Reject,
        );
        rejected_as(&model, "compute-latency-floor");
    }

    #[test]
    fn too_cheap_caught_as_energy_floor() {
        let model =
            GuardedModel::dense(corrupt(|b| b.cost.energy_uj *= 1e-9), GuardPolicy::Reject);
        rejected_as(&model, "mac-energy-floor");
    }

    #[test]
    fn warn_policy_passes_through_but_logs() {
        let model =
            GuardedModel::dense(corrupt(|b| b.cost.energy_uj = -1.0), GuardPolicy::Warn);
        let m = Mapping::trivial(&conv(), &Arch::accel_b());
        assert!(model.evaluate(&m).is_ok());
        let r = model.report();
        assert!(r.violations >= 1 && r.rejections == 0);
        assert_eq!(r.recent[0].invariant, Invariant::FiniteCost);
        assert!(!model.take_violations().is_empty());
        assert!(model.report().recent.is_empty(), "take_violations drains the log");
    }

    #[test]
    fn trust_policy_skips_checks() {
        let model =
            GuardedModel::dense(corrupt(|b| b.cost.energy_uj = -1.0), GuardPolicy::Trust);
        let m = Mapping::trivial(&conv(), &Arch::accel_b());
        assert!(model.evaluate(&m).is_ok());
        assert_eq!(model.report().violations, 0);
        assert_eq!(model.report().evaluations, 1);
    }

    #[test]
    fn faulty_model_nan_is_quarantined() {
        // The acceptance-criteria scenario: FaultyModel smuggles a NaN cost
        // past Cost::new; the guard converts it into a named rejection.
        use crate::fault::{FaultConfig, FaultyModel};
        let faulty =
            FaultyModel::new(DenseModel::new(conv(), Arch::accel_b()), FaultConfig::nans(1.0, 3));
        let model = GuardedModel::dense(faulty, GuardPolicy::Reject);
        rejected_as(&model, "finite-cost");
        assert_eq!(model.report().rejections, 1);
    }

    #[test]
    fn boxed_dyn_model_can_be_guarded() {
        let boxed: Box<dyn CostModel> = Box::new(DenseModel::new(conv(), Arch::accel_b()));
        let model = GuardedModel::dense(boxed, GuardPolicy::Reject);
        let m = Mapping::trivial(&conv(), &Arch::accel_b());
        assert!(model.evaluate(&m).is_ok());
    }

    #[test]
    fn spot_check_flags_nondeterminism() {
        use std::sync::atomic::AtomicU64 as Counter;
        struct Flaky {
            inner: DenseModel,
            calls: Counter,
        }
        impl CostModel for Flaky {
            fn problem(&self) -> &Problem {
                self.inner.problem()
            }
            fn arch(&self) -> &Arch {
                self.inner.arch()
            }
            fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
                self.evaluate_detailed(m).map(|b| b.cost)
            }
            fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
                let mut b = self.inner.evaluate_detailed(m)?;
                b.cost.energy_uj += self.calls.fetch_add(1, Ordering::Relaxed) as f64;
                Ok(b)
            }
        }
        let flaky = Flaky { inner: DenseModel::new(conv(), Arch::accel_b()), calls: Counter::new(0) };
        let mut cfg = GuardConfig::new(GuardPolicy::Reject);
        cfg.spot_check_every = 1;
        let model = GuardedModel::new(flaky, cfg);
        rejected_as(&model, "non-determinism");
    }

    #[test]
    fn violation_display_names_everything() {
        let v = InvariantViolation {
            invariant: Invariant::CapacityOverflow,
            level: Some(2),
            observed: 3.0e4,
            bound: 1.0e4,
        };
        let s = v.to_string();
        assert!(s.contains("capacity-overflow") && s.contains("level 2"));
        assert!(s.contains("3.000000e4") && s.contains("1.000000e4"));
    }
}
