//! Deterministic fault injection for resilience testing.
//!
//! [`FaultyModel`] wraps any [`CostModel`] and makes a seeded, per-mapping
//! decision to panic, return a NaN-poisoned cost, or report the mapping as
//! illegal. The decision is a pure function of `(mapping, seed)` — no
//! interior RNG state — so the same mapping faults the same way on every
//! evaluation, across threads, and across reruns: tests stay reproducible
//! and a retry with a *different search seed* genuinely explores different
//! mappings rather than re-rolling the fault dice on the same ones.

use crate::analysis::Breakdown;
use crate::cost::Cost;
use crate::engine::CostModel;
use arch::Arch;
use mapping::{Mapping, MappingError};
use problem::Problem;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel panic payload used by injected panics, so a resilient harness
/// (or a panic hook) can distinguish an injected fault from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault seed of the [`FaultyModel`] that raised it.
    pub seed: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault (seed {})", self.seed)
    }
}

/// Fault-class probabilities. Classes are disjoint: a single uniform draw
/// in `[0, 1)` is bucketed as panic, then NaN, then illegal, so the total
/// fault rate is the sum of the three and must be `<= 1`.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability an evaluation panics (with an [`InjectedFault`] payload).
    pub p_panic: f64,
    /// Probability an evaluation returns a NaN-poisoned [`Cost`].
    pub p_nan: f64,
    /// Probability an evaluation spuriously reports the mapping illegal.
    pub p_illegal: f64,
    /// Seed mixed into every per-mapping fault decision.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (the wrapper becomes a transparent pass-through).
    pub fn none(seed: u64) -> Self {
        FaultConfig { p_panic: 0.0, p_nan: 0.0, p_illegal: 0.0, seed }
    }

    /// Panic-only faults at rate `p`.
    pub fn panics(p: f64, seed: u64) -> Self {
        FaultConfig { p_panic: p, ..FaultConfig::none(seed) }
    }

    /// NaN-only faults at rate `p`.
    pub fn nans(p: f64, seed: u64) -> Self {
        FaultConfig { p_nan: p, ..FaultConfig::none(seed) }
    }

    /// Illegal-mapping-only faults at rate `p`.
    pub fn illegals(p: f64, seed: u64) -> Self {
        FaultConfig { p_illegal: p, ..FaultConfig::none(seed) }
    }

    fn validate(&self) {
        let total = self.p_panic + self.p_nan + self.p_illegal;
        assert!(
            (0.0..=1.0).contains(&total)
                && self.p_panic >= 0.0
                && self.p_nan >= 0.0
                && self.p_illegal >= 0.0,
            "fault probabilities must be non-negative and sum to <= 1 (got {total})"
        );
    }
}

/// What the fault decision said for one mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Panic,
    Nan,
    Illegal,
}

/// A [`CostModel`] decorator that injects deterministic faults — the test
/// double for the resilient runtime (`mse::runtime`). Healthy evaluations
/// pass straight through to the wrapped model.
#[derive(Debug)]
pub struct FaultyModel<M: CostModel> {
    inner: M,
    config: FaultConfig,
    injected_panics: AtomicUsize,
    injected_nans: AtomicUsize,
    injected_illegals: AtomicUsize,
}

impl<M: CostModel> FaultyModel<M> {
    /// Wraps `inner` with the given fault configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configured probabilities are negative or sum above 1.
    pub fn new(inner: M, config: FaultConfig) -> Self {
        config.validate();
        FaultyModel {
            inner,
            config,
            injected_panics: AtomicUsize::new(0),
            injected_nans: AtomicUsize::new(0),
            injected_illegals: AtomicUsize::new(0),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Counts of faults injected so far: `(panics, nans, illegals)`.
    pub fn injected(&self) -> (usize, usize, usize) {
        (
            self.injected_panics.load(Ordering::Relaxed),
            self.injected_nans.load(Ordering::Relaxed),
            self.injected_illegals.load(Ordering::Relaxed),
        )
    }

    /// The seeded, per-mapping fault decision. FNV-1a over the mapping's
    /// level decisions and the config seed, finished with a splitmix64-style
    /// avalanche so structurally similar mappings don't fault in lockstep.
    ///
    /// Unit-bound temporal loops are skipped from the order hash: they
    /// never iterate, so the engine's cost is invariant to their position
    /// and the fault decision must be too — otherwise two mappings that
    /// are semantically identical (and share an evaluation-cache entry)
    /// could fault differently, which no deterministic model can do.
    fn decide(&self, m: &Mapping) -> Fault {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.config.seed;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for level in m.levels() {
            for &d in level.order.iter().filter(|&&d| level.temporal[d] > 1) {
                mix(d as u64);
            }
            for &t in &level.temporal {
                mix(t);
            }
            for &s in &level.spatial {
                mix(s.wrapping_add(0x9e37_79b9_7f4a_7c15));
            }
        }
        // Finalize (FNV alone is weak in the high bits we sample from).
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let c = &self.config;
        if u < c.p_panic {
            Fault::Panic
        } else if u < c.p_panic + c.p_nan {
            Fault::Nan
        } else if u < c.p_panic + c.p_nan + c.p_illegal {
            Fault::Illegal
        } else {
            Fault::None
        }
    }

    fn inject(&self, m: &Mapping) -> Result<Option<Cost>, MappingError> {
        match self.decide(m) {
            Fault::None => Ok(None),
            Fault::Panic => {
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(InjectedFault { seed: self.config.seed });
            }
            Fault::Nan => {
                self.injected_nans.fetch_add(1, Ordering::Relaxed);
                // Bypasses Cost::new, whose debug_assert rejects NaN — the
                // whole point here is smuggling a poisoned cost through.
                Ok(Some(Cost { latency_cycles: f64::NAN, energy_uj: f64::NAN }))
            }
            Fault::Illegal => {
                self.injected_illegals.fetch_add(1, Ordering::Relaxed);
                Err(MappingError::CapacityExceeded {
                    level: 0,
                    needed_words: f64::MAX,
                    capacity_words: 0,
                })
            }
        }
    }
}

impl<M: CostModel> CostModel for FaultyModel<M> {
    fn problem(&self) -> &Problem {
        self.inner.problem()
    }

    fn arch(&self) -> &Arch {
        self.inner.arch()
    }

    fn evaluate(&self, m: &Mapping) -> Result<Cost, MappingError> {
        match self.inject(m)? {
            Some(poisoned) => Ok(poisoned),
            None => self.inner.evaluate(m),
        }
    }

    fn evaluate_detailed(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        match self.inject(m)? {
            Some(poisoned) => {
                let mut b = self.inner.evaluate_detailed(m)?;
                b.cost = poisoned;
                Ok(b)
            }
            None => self.inner.evaluate_detailed(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DenseModel;
    use mapping::MapSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dense() -> DenseModel {
        DenseModel::new(
            problem::Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3),
            Arch::accel_b(),
        )
    }

    fn sample_mappings(n: usize) -> Vec<Mapping> {
        let m = dense();
        let space = MapSpace::new(m.problem().clone(), m.arch().clone());
        let mut rng = SmallRng::seed_from_u64(7);
        (0..n).map(|_| space.random(&mut rng)).collect()
    }

    #[test]
    fn no_faults_is_transparent() {
        let model = FaultyModel::new(dense(), FaultConfig::none(0));
        for m in sample_mappings(50) {
            assert_eq!(model.evaluate(&m).ok(), model.inner().evaluate(&m).ok());
        }
        assert_eq!(model.injected(), (0, 0, 0));
    }

    #[test]
    fn fault_decision_is_deterministic() {
        let a = FaultyModel::new(dense(), FaultConfig::nans(0.3, 42));
        let b = FaultyModel::new(dense(), FaultConfig::nans(0.3, 42));
        for m in sample_mappings(100) {
            let ra = a.evaluate(&m).map(|c| c.edp().to_bits()).ok();
            let rb = b.evaluate(&m).map(|c| c.edp().to_bits()).ok();
            assert_eq!(ra, rb);
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn nan_rate_is_roughly_configured() {
        let model = FaultyModel::new(dense(), FaultConfig::nans(0.2, 1));
        let mappings = sample_mappings(500);
        let mut nans = 0;
        for m in &mappings {
            if model.evaluate(m).map(|c| c.edp().is_nan()).unwrap_or(false) {
                nans += 1;
            }
        }
        let rate = nans as f64 / mappings.len() as f64;
        assert!((0.1..=0.3).contains(&rate), "NaN rate {rate} far from 0.2");
        assert_eq!(model.injected().1, nans);
    }

    #[test]
    fn panic_carries_sentinel_payload() {
        let model = FaultyModel::new(dense(), FaultConfig::panics(1.0, 9));
        let m = sample_mappings(1).pop().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.evaluate(&m);
        }))
        .unwrap_err();
        let fault = err.downcast_ref::<InjectedFault>().expect("sentinel payload");
        assert_eq!(fault.seed, 9);
        assert_eq!(model.injected().0, 1);
    }

    #[test]
    fn illegal_fault_reports_mapping_error() {
        let model = FaultyModel::new(dense(), FaultConfig::illegals(1.0, 3));
        let m = sample_mappings(1).pop().unwrap();
        assert!(matches!(
            model.evaluate(&m),
            Err(MappingError::CapacityExceeded { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn rejects_probabilities_above_one() {
        let _ = FaultyModel::new(dense(), FaultConfig { p_panic: 0.6, p_nan: 0.6, p_illegal: 0.0, seed: 0 });
    }

    #[test]
    fn different_seeds_fault_different_mappings() {
        let a = FaultyModel::new(dense(), FaultConfig::illegals(0.2, 1));
        let b = FaultyModel::new(dense(), FaultConfig::illegals(0.2, 2));
        let mut differs = false;
        for m in sample_mappings(200) {
            if a.evaluate(&m).is_err() != b.evaluate(&m).is_err() {
                differs = true;
                break;
            }
        }
        assert!(differs, "fault pattern ignored the seed");
    }
}
