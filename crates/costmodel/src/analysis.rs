//! The analytical traffic/latency/energy engine shared by the dense and
//! sparse cost models.
//!
//! Like Timeloop, the engine derives, for every tensor and every storage
//! level, (a) the resident tile footprint and (b) the number of times that
//! tile's contents change as the loops outside it iterate, honoring
//! temporal reuse (stationarity) granted by the loop order and spatial
//! reuse (multicast) granted by parallelization. Traffic × per-level access
//! energies gives energy; a compute/bandwidth roofline gives latency.

use crate::cost::Cost;
use crate::style::ProductStyle;
use arch::{Arch, SparseCaps};
use mapping::{Loop, Mapping, MappingError};
use problem::{Density, Problem, TensorKind};

/// Traffic observed at one storage level (words accessed at that level's
/// port, summed over all instances).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelTraffic {
    /// Words read out of this level (supplies to children, partial-sum
    /// re-reads, drain reads).
    pub reads: f64,
    /// Words written into this level (fills from the parent, partial-sum
    /// writebacks from children).
    pub writes: f64,
}

impl LevelTraffic {
    /// Total words accessed.
    pub fn total(&self) -> f64 {
        self.reads + self.writes
    }
}

/// Full evaluation breakdown; [`Cost`] is derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Per-storage-level traffic, outermost (DRAM) first.
    pub per_level: Vec<LevelTraffic>,
    /// Dense MAC count.
    pub macs: f64,
    /// MACs actually consuming a cycle (post-skipping).
    pub cycle_macs: f64,
    /// MACs actually consuming energy (post-gating/skipping).
    pub energy_macs: f64,
    /// Extra datapath work cycles charged by the sparse style model
    /// (fiber intersection for inner product, merge for outer product).
    pub style_work: f64,
    /// Detected product style (only meaningful for sparse evaluations).
    pub style: ProductStyle,
    /// Spatial lanes used by the mapping.
    pub lanes: f64,
    /// Compute-bound cycles.
    pub compute_cycles: f64,
    /// Per-level bandwidth-bound cycles.
    pub bw_cycles: Vec<f64>,
    /// Capacity spill factor per level (1.0 = tile fits; >1.0 = the level
    /// overflows by that factor and its boundary traffic is inflated
    /// accordingly; soft-capacity sparse evaluations only).
    pub spill: Vec<f64>,
    /// Final cost.
    pub cost: Cost,
}

impl Breakdown {
    /// Per-level energy in pJ (traffic × per-access energy), outermost
    /// first. MAC and sparse-style energy are not included (they are
    /// datapath, not storage).
    pub fn energy_by_level(&self, arch: &Arch) -> Vec<f64> {
        self.per_level
            .iter()
            .enumerate()
            .map(|(i, t)| t.total() * arch.level(i).energy_per_access)
            .collect()
    }

    /// Fraction of the chip's multiply lanes the mapping uses.
    pub fn utilization(&self, arch: &Arch) -> f64 {
        self.lanes / arch.total_spatial_lanes() as f64
    }

    /// Whether latency is bound by compute (true) or by some level's
    /// bandwidth (false).
    pub fn compute_bound(&self) -> bool {
        self.compute_cycles >= self.bw_cycles.iter().copied().fold(0.0, f64::max)
    }
}

/// How buffer-capacity violations are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityMode {
    /// Violations are errors (the dense engine; mappings must be legal).
    Strict,
    /// Violations inflate boundary traffic by the overflow factor (the
    /// sparse engine's cross-density testing, where a mapping tuned for a
    /// sparser tensor may overflow when run denser — Table 2).
    Soft,
}

/// Per-tensor refetch multiplicities at one level.
#[derive(Debug, Clone, Copy)]
struct Mult {
    /// Multicast-collapsed multiplicity: parent-port transfers.
    read: f64,
    /// Per-instance multiplicity: child fill writes.
    write: f64,
    /// Number of distinct tiles (relevant loops only).
    distinct: f64,
}

/// Scans the loops strictly outside `level` (i.e. `Loop::level < level`),
/// innermost first, and derives the refetch multiplicities of a tensor
/// whose relevance predicate is `relevant`.
///
/// Temporal loops over irrelevant dimensions that are innermost-consecutive
/// grant stationarity (the resident tile is reused); once any relevant
/// temporal loop is crossed, every loop outside it — relevant or not —
/// multiplies the refetch count, because intervening relevant iterations
/// evict the tile. Spatial loops never evict: relevant ones partition data
/// (count everywhere), irrelevant ones multicast (count only on the
/// receiving side).
fn multiplicities(nest: &[Loop], level: usize, relevant: impl Fn(usize) -> bool) -> Mult {
    let mut started = false;
    let mut read = 1.0f64;
    let mut write = 1.0f64;
    let mut distinct = 1.0f64;
    // Unit-bound loops never iterate: they are transparent to reuse (this
    // is also what makes Random-Pruned's unit-loop order canonicalization a
    // lossless pruning).
    for l in nest.iter().rev().filter(|l| l.level < level && l.bound > 1) {
        let b = l.bound as f64;
        if l.spatial {
            if relevant(l.dim) {
                read *= b;
                write *= b;
                distinct *= b;
            } else {
                write *= b;
            }
        } else if relevant(l.dim) {
            started = true;
            read *= b;
            write *= b;
            distinct *= b;
        } else if started {
            read *= b;
            write *= b;
        }
    }
    Mult { read, write, distinct }
}

/// Evaluates `m` for `problem` on `arch` with the given workload densities
/// and sparse capabilities. The dense model is the special case
/// `Density::DENSE` + [`SparseCaps::none`] + [`CapacityMode::Strict`].
///
/// One-shot convenience over [`AnalysisContext`]: hot paths (the cost
/// models, which evaluate thousands of mappings against one fixed
/// `(problem, arch)` pair) hold a context instead, so the per-pair
/// invariants below are derived once, not per mapping.
///
/// # Errors
///
/// Returns a structural [`MappingError`] for illegal mappings, or
/// [`MappingError::CapacityExceeded`] under [`CapacityMode::Strict`].
pub fn analyze(
    problem: &Problem,
    arch: &Arch,
    m: &Mapping,
    density: Density,
    caps: &SparseCaps,
    capacity: CapacityMode,
) -> Result<Breakdown, MappingError> {
    AnalysisContext::new(problem, arch, density, caps, capacity).analyze(m)
}

/// Everything the traffic engine needs that does *not* depend on the
/// mapping being evaluated: total MACs, occupancy, compression scales,
/// per-tensor relevance bitmasks, reduction dims, the virtual register
/// tile. A mapper evaluates thousands to millions of mappings against one
/// fixed `(problem, arch, density, caps)` tuple, so these invariants are
/// hoisted out of the per-mapping path ([`AnalysisContext::analyze`]).
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    problem: Problem,
    arch: Arch,
    density: Density,
    caps: SparseCaps,
    capacity: CapacityMode,
    /// Dense MAC count.
    pub(crate) macs: f64,
    /// Probability a MAC has both operands nonzero.
    pub(crate) occupancy: f64,
    /// Reduction dims (output-irrelevant), canonical order.
    pub(crate) reduction_dims: Vec<usize>,
    /// Bit `d` set ⇔ dim `d` is a reduction dim (for style classification).
    pub(crate) reduction_mask: u64,
    /// Per-tensor relevance bitmask: bit `d` set ⇔ the tensor depends on
    /// dim `d`.
    pub(crate) relevance: Vec<u64>,
    /// Per-tensor traffic/footprint scale from compression (outputs get a
    /// per-level scale during analysis).
    pub(crate) scale: Vec<f64>,
    /// Per-tensor *capacity provisioning* scale: worst case over runtime
    /// densities — activations/outputs dense, weights may be compressed.
    pub(crate) cap_scale: Vec<f64>,
    /// The virtual per-ALU register tile (all-unit extents).
    unit_tile: Vec<u64>,
}

impl AnalysisContext {
    /// Precomputes the per-`(problem, arch, density, caps)` invariants.
    pub fn new(
        problem: &Problem,
        arch: &Arch,
        density: Density,
        caps: &SparseCaps,
        capacity: CapacityMode,
    ) -> Self {
        let tensors = problem.tensors();
        let macs = problem.total_macs() as f64;
        let occupancy = density.weight * density.input;
        // A tensor is stored compressed only when the compressed form
        // (nnz + metadata) is smaller than the dense form.
        let compress = |d: f64| -> f64 {
            if caps.compressed {
                (d * (1.0 + caps.metadata_per_nnz)).min(1.0)
            } else {
                1.0
            }
        };
        let reduction_dims = problem.reduction_dims();
        let mut reduction_mask = 0u64;
        for &d in &reduction_dims {
            reduction_mask |= 1 << d;
        }
        let relevance = tensors
            .iter()
            .map(|t| {
                let mut mask = 0u64;
                for d in 0..problem.num_dims() {
                    if t.projection.depends_on(d) {
                        mask |= 1 << d;
                    }
                }
                mask
            })
            .collect();
        let scale: Vec<f64> = tensors
            .iter()
            .map(|t| match t.kind {
                TensorKind::Output => 1.0,
                k => compress(density.of(k)),
            })
            .collect();
        // Capacity must be provisioned for the *worst case* of any density
        // that is dynamic at runtime: activations (and therefore partial
        // outputs) vary per input, so their tiles are allocated at dense
        // size. Weight sparsity is static (fixed when the model is
        // pruned), so weight tiles may be provisioned compressed.
        let cap_scale = tensors
            .iter()
            .zip(&scale)
            .map(|(t, s)| match t.kind {
                TensorKind::Weight => *s,
                TensorKind::Input | TensorKind::Output => 1.0,
            })
            .collect();
        let unit_tile = vec![1u64; problem.num_dims()];
        AnalysisContext {
            problem: problem.clone(),
            arch: arch.clone(),
            density,
            caps: *caps,
            capacity,
            macs,
            occupancy,
            reduction_dims,
            reduction_mask,
            relevance,
            scale,
            cap_scale,
            unit_tile,
        }
    }

    /// The workload this context is bound to.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The accelerator this context is bound to.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// The density profile this context evaluates at.
    pub fn density(&self) -> Density {
        self.density
    }

    /// The sparse capability description.
    pub fn caps(&self) -> &SparseCaps {
        &self.caps
    }

    fn compress(&self, d: f64) -> f64 {
        if self.caps.compressed {
            (d * (1.0 + self.caps.metadata_per_nnz)).min(1.0)
        } else {
            1.0
        }
    }

    /// Density of a *partially accumulated* output tile at a level,
    /// governed by the reduction volume already folded inside that tile:
    /// per-MAC partial updates (the register boundary) are `occupancy`
    /// dense, while a fully reduced DRAM output is `1-(1-occ)^R` dense.
    fn out_density_at(&self, ext: &[u64]) -> f64 {
        // Dense fast path: `(1 - 0^r).clamp(1, 1)` is 1.0 for every `r`
        // (including `r = 0`, where the clamp floor takes over), so skip
        // the `powf` — it dominates this function's cost.
        if self.occupancy >= 1.0 {
            return 1.0;
        }
        let red_inside: f64 = self.reduction_dims.iter().map(|&d| ext[d] as f64).product();
        (1.0 - (1.0 - self.occupancy).powf(red_inside)).clamp(self.occupancy.min(1.0), 1.0)
    }

    /// Capacity spill factor of one level given its resident-tile extents:
    /// `1.0` when the tile fits, the overflow factor under
    /// [`CapacityMode::Soft`], and [`MappingError::CapacityExceeded`] under
    /// [`CapacityMode::Strict`].
    pub(crate) fn spill_at(&self, li: usize, ext: &[u64]) -> Result<f64, MappingError> {
        let Some(cap) = self.arch.level(li).capacity_words else { return Ok(1.0) };
        let needed: f64 = self
            .problem
            .tensors()
            .iter()
            .zip(&self.cap_scale)
            .map(|(t, s)| t.projection.footprint_f64(ext) * s)
            .sum();
        if needed > cap as f64 {
            if self.capacity == CapacityMode::Strict {
                return Err(MappingError::CapacityExceeded {
                    level: li,
                    needed_words: needed,
                    capacity_words: cap,
                });
            }
            return Ok(needed / cap as f64);
        }
        Ok(1.0)
    }

    /// Traffic contributed by one tensor at one loop-nest boundary
    /// (parent = `i-1`, child = `i`; `i == num_levels` is the virtual
    /// per-ALU register boundary with unit-tile extents `ext`). `sp` is the
    /// child's spill factor. Pure per-(boundary, tensor) work, shared by the
    /// one-shot, batched, and delta evaluation paths so all three perform
    /// bit-identical floating-point operations.
    pub(crate) fn boundary_contrib(
        &self,
        nest: &[Loop],
        i: usize,
        ext: &[u64],
        sp: f64,
        ti: usize,
    ) -> BoundaryContrib {
        let nl = self.arch.num_levels();
        let t = &self.problem.tensors()[ti];
        let f = t.projection.footprint_f64(ext);
        let mask = self.relevance[ti];
        let mult = multiplicities(nest, i, |d| mask & (1 << d) != 0);
        let sc = if t.kind == TensorKind::Output {
            // Per-level partial-output density (per-MAC updates at the
            // register boundary, fully reduced tiles further out).
            self.compress(self.out_density_at(ext))
        } else if i == nl && self.caps.skipping {
            // At the MAC boundary, skipping hardware only fetches operands
            // for surviving (all-nonzero) MACs, regardless of which operand
            // carries the zeros.
            self.occupancy.min(self.scale[ti])
        } else {
            self.scale[ti]
        };
        match t.kind {
            TensorKind::Input | TensorKind::Weight => BoundaryContrib {
                parent_reads: mult.read * f * sc * sp,
                parent_writes: 0.0,
                child_reads: 0.0,
                child_writes: mult.write * f * sc * sp,
            },
            TensorKind::Output => {
                // Drains: every recycle of the child tile writes its
                // contents up (spatial reduction collapses multicast).
                // Accumulation refills: revisited tiles re-read their
                // partials from the parent (first pass initializes).
                let drains = mult.read * f * sc * sp;
                let refills = (mult.read - mult.distinct).max(0.0) * f * sc * sp;
                BoundaryContrib {
                    parent_reads: refills,
                    parent_writes: drains,
                    child_reads: drains,
                    child_writes: refills,
                }
            }
        }
    }

    /// Adds one boundary contribution into the per-level traffic lanes.
    /// Every cell receives exactly one add per (boundary, tensor) pair, in
    /// the same order as the historical inline loop, so accumulation stays
    /// bit-identical across evaluation paths (adding `+0.0` to a
    /// non-negative cell is an IEEE no-op).
    pub(crate) fn apply_contrib(per_level: &mut [LevelTraffic], i: usize, c: BoundaryContrib) {
        per_level[i - 1].reads += c.parent_reads;
        per_level[i - 1].writes += c.parent_writes;
        if i < per_level.len() {
            per_level[i].reads += c.child_reads;
            per_level[i].writes += c.child_writes;
        }
    }

    /// Datapath, energy, and roofline tail shared by every evaluation path:
    /// turns accumulated per-level traffic plus spill factors into a full
    /// [`Breakdown`].
    pub(crate) fn finalize(
        &self,
        m: &Mapping,
        per_level: Vec<LevelTraffic>,
        spill: Vec<f64>,
    ) -> Breakdown {
        let arch = &self.arch;
        let nl = arch.num_levels();
        let macs = self.macs;
        let occupancy = self.occupancy;

        // Datapath: skipping removes zero cycles; gating removes zero
        // energy.
        let caps = &self.caps;
        let cycle_macs = if caps.skipping { macs * occupancy } else { macs };
        let energy_macs = if caps.skipping || caps.gating { macs * occupancy } else { macs };

        // Sparse dataflow-style overhead (§4.5.3); zero for dense caps.
        let style = crate::style::classify_masked(self.reduction_mask, m);
        let style_work = match style {
            ProductStyle::Inner => {
                caps.intersection_cost * macs * self.density.weight.max(self.density.input)
            }
            ProductStyle::Outer => (caps.merge_overhead - 1.0).max(0.0) * macs * occupancy,
        };

        let lanes = m.used_lanes() as f64;
        let compute_cycles = (cycle_macs + style_work) / lanes;

        let innermost_energy = arch.level(nl - 1).energy_per_access;
        let mut energy_pj = style_work * innermost_energy + energy_macs * arch.mac_energy;
        for (li, t) in per_level.iter().enumerate() {
            energy_pj += t.total() * arch.level(li).energy_per_access;
        }

        let mut bw_cycles = Vec::with_capacity(nl);
        let mut active = 1.0f64;
        for (li, t) in per_level.iter().enumerate() {
            bw_cycles.push(t.total() / (arch.level(li).bandwidth * active));
            active *= m.levels()[li].spatial_product() as f64;
        }

        let latency = compute_cycles.max(bw_cycles.iter().copied().fold(0.0, f64::max)).max(1.0);
        let cost = Cost::new(latency, energy_pj * 1e-6);

        Breakdown {
            per_level,
            macs,
            cycle_macs,
            energy_macs,
            style_work,
            style,
            lanes,
            compute_cycles,
            bw_cycles,
            spill,
            cost,
        }
    }

    /// Evaluates one mapping (the per-mapping hot path).
    ///
    /// # Errors
    ///
    /// Returns a structural [`MappingError`] for illegal mappings, or
    /// [`MappingError::CapacityExceeded`] under [`CapacityMode::Strict`].
    pub fn analyze(&self, m: &Mapping) -> Result<Breakdown, MappingError> {
        let problem = &self.problem;
        let arch = &self.arch;
        m.validate_structure(problem, arch)?;

        let nl = arch.num_levels();
        let nt = problem.tensors().len();

        // Capacity: spill factor per level.
        let mut spill = vec![1.0f64; nl];
        for (li, spill_li) in spill.iter_mut().enumerate().take(nl) {
            if arch.level(li).capacity_words.is_some() {
                *spill_li = self.spill_at(li, &m.tile_extents(li))?;
            }
        }

        let nest = m.nest();
        let mut per_level = vec![LevelTraffic::default(); nl];

        // Boundaries: (parent = i-1, child = i) for i in 1..=nl, where
        // i == nl is the virtual per-ALU register level (unit tiles) that
        // models MAC operand fetch and accumulator drain.
        for i in 1..=nl {
            let ext = if i < nl { m.tile_extents(i) } else { self.unit_tile.clone() };
            // Spill at the child inflates its boundary with the parent
            // (the register boundary `i == nl` has none).
            let sp = spill.get(i).copied().unwrap_or(1.0);
            for ti in 0..nt {
                let c = self.boundary_contrib(&nest, i, &ext, sp, ti);
                Self::apply_contrib(&mut per_level, i, c);
            }
        }

        Ok(self.finalize(m, per_level, spill))
    }

    /// Evaluates a whole batch in one pass over structure-of-arrays
    /// scratch: one loop-nest arena, one extents arena, and level-major
    /// traffic lanes shared by every mapping in the batch, instead of the
    /// ~10 per-mapping allocations the one-shot path performs. Results are
    /// bit-identical to calling [`AnalysisContext::analyze`] per mapping:
    /// each mapping's cells are touched in the same boundary/tensor order
    /// with the same operands, so floating-point accumulation order is
    /// unchanged.
    pub fn analyze_batch(&self, ms: &[Mapping]) -> Vec<Result<Breakdown, MappingError>> {
        let nl = self.arch.num_levels();
        let nt = self.problem.tensors().len();
        let d = self.problem.num_dims();
        let n = ms.len();
        if n == 0 {
            return Vec::new();
        }

        // Lanes that fail validation or strict capacity park their error
        // here and drop out of the shared passes.
        let mut errs: Vec<Option<MappingError>> = vec![None; n];

        // Extents arena, boundary-major: lane (i, mi) holds the tile
        // extents of level i for mapping mi; level nl is the all-unit
        // virtual register tile (the arena's initial state).
        let mut ext = vec![1u64; (nl + 1) * n * d];
        let lane = |i: usize, mi: usize| (i * n + mi) * d..(i * n + mi + 1) * d;
        for (mi, m) in ms.iter().enumerate() {
            if let Err(e) = m.validate_structure(&self.problem, &self.arch) {
                errs[mi] = Some(e);
                continue;
            }
            // Backward sweep: ext(li) = ext(li+1) × level li's factors.
            // Integer multiplication is exact, so the values equal
            // `m.tile_extents(li)` bit-for-bit.
            for li in (0..nl).rev() {
                let (dst, src) = (lane(li, mi), lane(li + 1, mi));
                let l = &m.levels()[li];
                for dim in 0..d {
                    ext[dst.start + dim] = ext[src.start + dim] * l.temporal[dim] * l.spatial[dim];
                }
            }
        }

        // Spill factors, mapping-major.
        let mut spill = vec![1.0f64; n * nl];
        for mi in 0..n {
            if errs[mi].is_some() {
                continue;
            }
            for li in 0..nl {
                match self.spill_at(li, &ext[lane(li, mi)]) {
                    Ok(s) => spill[mi * nl + li] = s,
                    Err(e) => {
                        errs[mi] = Some(e);
                        break;
                    }
                }
            }
        }

        // Loop-nest arena.
        let mut nest_arena: Vec<Loop> = Vec::with_capacity(n * nl * d);
        let mut nest_off = vec![0usize; n + 1];
        for (mi, m) in ms.iter().enumerate() {
            if errs[mi].is_none() {
                m.nest_into(&mut nest_arena);
            }
            nest_off[mi + 1] = nest_arena.len();
        }

        // Traffic pass, boundary-major across the batch: every mapping's
        // cells still see boundary i strictly before i+1 and tensors in
        // canonical order, so per-mapping accumulation matches `analyze`.
        let mut per_level = vec![LevelTraffic::default(); n * nl];
        for i in 1..=nl {
            for mi in 0..n {
                if errs[mi].is_some() {
                    continue;
                }
                let ext_i = &ext[lane(i, mi)];
                let sp = if i < nl { spill[mi * nl + i] } else { 1.0 };
                let nest = &nest_arena[nest_off[mi]..nest_off[mi + 1]];
                let lanes = &mut per_level[mi * nl..(mi + 1) * nl];
                for ti in 0..nt {
                    let c = self.boundary_contrib(nest, i, ext_i, sp, ti);
                    Self::apply_contrib(lanes, i, c);
                }
            }
        }

        ms.iter()
            .enumerate()
            .map(|(mi, m)| match errs[mi].take() {
                Some(e) => Err(e),
                None => Ok(self.finalize(
                    m,
                    per_level[mi * nl..(mi + 1) * nl].to_vec(),
                    spill[mi * nl..(mi + 1) * nl].to_vec(),
                )),
            })
            .collect()
    }

    /// Admissible lower bound on the cost of `m`: provably
    /// `bound ≤ analyze(m).cost` component-wise (and therefore on EDP), so
    /// a candidate whose bound already exceeds the incumbent can be skipped
    /// without evaluation and without changing any search result. `None`
    /// when the mapping is structurally invalid (full evaluation reports
    /// the error).
    ///
    /// The bound inverts the guard layer's floors; see [`BoundReport`] for
    /// the admissibility argument per term.
    pub fn bound(&self, m: &Mapping) -> Option<BoundReport> {
        m.validate_structure(&self.problem, &self.arch).ok()?;
        // Joint operand occupancy lower-bounds every traffic/cycle/energy
        // scale the engine can apply (compression keeps ≥ density words;
        // gating/skipping keep ≥ occupancy MACs); 1.0 for dense.
        let floor = self.occupancy.min(1.0);
        let ext0 = m.tile_extents(0);
        let full: f64 = self
            .problem
            .tensors()
            .iter()
            .filter(|t| t.kind != TensorKind::Output)
            .map(|t| t.projection.footprint_f64(&ext0))
            .sum();
        let l0 = self.arch.level(0);
        let compute_latency = self.macs * floor / m.used_lanes() as f64;
        let dram_bw_latency = full * floor / l0.bandwidth;
        let latency = compute_latency.max(dram_bw_latency).max(1.0);
        let mac_energy_pj = self.macs * floor * self.arch.mac_energy;
        let dram_energy_pj = full * floor * l0.energy_per_access;
        let energy_uj = (mac_energy_pj + dram_energy_pj) * 1e-6;
        Some(BoundReport {
            compute_latency,
            dram_bw_latency,
            latency,
            mac_energy_pj,
            dram_energy_pj,
            cost: Cost::new(latency, energy_uj),
        })
    }
}

/// Traffic contributed by one tensor at one loop-nest boundary, split by
/// which side of the boundary each word lands on. Cached per boundary by the
/// delta evaluator and re-applied in canonical order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct BoundaryContrib {
    /// Words read out of the parent level (`i-1`).
    pub parent_reads: f64,
    /// Words written into the parent level (output drains).
    pub parent_writes: f64,
    /// Words read out of the child level (`i`; dropped at the register
    /// boundary).
    pub child_reads: f64,
    /// Words written into the child level (fills / accumulation refills).
    pub child_writes: f64,
}

/// Per-floor breakdown of the admissible lower bound
/// ([`AnalysisContext::bound`]), printable via `mapex evaluate
/// --explain-bound`.
///
/// Admissibility, term by term (`floor` = joint operand occupancy, 1 for
/// dense; every engine scale — compression, gating, skipping, spill ≥ 1 —
/// is ≥ `floor` or only inflates):
///
/// * `compute_latency = macs × floor / used_lanes(m)`: true latency ≥
///   `compute_cycles = (cycle_macs + style_work) / used_lanes` and
///   `cycle_macs ≥ macs × floor`, `style_work ≥ 0`.
/// * `dram_bw_latency = Σ non-output footprints × floor / bw₀`: true
///   latency ≥ `bw_cycles[0] = total₀ / bw₀` (one DRAM instance), and DRAM
///   reads alone cover each non-output tensor once (the compulsory-traffic
///   floor the guard layer enforces).
/// * `latency = max(1, …)`: the engine clamps latency to ≥ 1 cycle.
/// * `mac_energy_pj = macs × floor × mac_energy`: `energy_macs ≥ macs ×
///   floor` in every gating/skipping mode.
/// * `dram_energy_pj`: the compulsory DRAM reads again, priced at the DRAM
///   access energy; all other levels' traffic only adds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundReport {
    /// Compute-roofline latency floor (cycles).
    pub compute_latency: f64,
    /// DRAM-bandwidth latency floor from compulsory traffic (cycles).
    pub dram_bw_latency: f64,
    /// Combined admissible latency bound (cycles, ≥ 1).
    pub latency: f64,
    /// MAC energy floor (pJ).
    pub mac_energy_pj: f64,
    /// Compulsory DRAM traffic energy floor (pJ).
    pub dram_energy_pj: f64,
    /// The bound as a [`Cost`] (µJ), comparable against true costs.
    pub cost: Cost,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapping::MapSpace;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dense(problem: &Problem, arch: &Arch, m: &Mapping) -> Breakdown {
        analyze(problem, arch, m, Density::DENSE, &SparseCaps::none(), CapacityMode::Strict)
            .expect("legal mapping")
    }

    fn small_setup() -> (Problem, Arch) {
        (Problem::conv2d("t", 2, 8, 8, 7, 7, 3, 3), Arch::accel_b())
    }

    #[test]
    fn trivial_mapping_dram_reads_match_hand_count() {
        // All loops at DRAM, unit tiles inside: every MAC re-fetches its
        // operands from DRAM (no reuse anywhere below), so DRAM reads for
        // each input operand equal... the stationarity granted by the DRAM
        // loop order (innermost X, S irrelevant to weights etc.).
        let (p, a) = small_setup();
        let m = Mapping::trivial(&p, &a);
        let b = dense(&p, &a, &m);
        let macs = p.total_macs() as f64;
        // Weights: order is (B,K,C,Y,X,R,S); innermost loop S is
        // weight-relevant => no stationarity => weight fetches = macs.
        // Inputs: innermost S,R are input-relevant (window) => macs.
        // Outputs: innermost S,R irrelevant (register accumulation), so
        // drains (DRAM writes) = B*K*C*Y*X = macs / 9, and accumulation
        // refills (DRAM reads) = drains - distinct outputs (first pass of
        // the C loop needs no read).
        let drains = macs / 9.0;
        let distinct_outputs = (2 * 8 * 7 * 7) as f64;
        let refills = drains - distinct_outputs;
        let expected_reads = macs + macs + refills;
        let expected_writes = drains;
        assert!((b.per_level[0].reads - expected_reads).abs() / expected_reads < 1e-9);
        assert!((b.per_level[0].writes - expected_writes).abs() / expected_writes < 1e-9);
    }

    #[test]
    fn output_stationary_order_cuts_output_traffic() {
        let (p, a) = small_setup();
        let mut m = Mapping::trivial(&p, &a);
        // (C,R,S) innermost at DRAM: full register accumulation per output.
        m.levels_mut()[0].order = vec![0, 1, 3, 4, 2, 5, 6];
        let b = dense(&p, &a, &m);
        let outputs = (2 * 8 * 7 * 7) as f64;
        assert!((b.per_level[0].writes - outputs).abs() < 1e-6);
    }

    #[test]
    fn weight_stationary_order_cuts_weight_traffic() {
        let (p, a) = small_setup();
        let mut m = Mapping::trivial(&p, &a);
        // Weight-irrelevant dims (B,Y,X) innermost: weights stationary in
        // the register across them.
        m.levels_mut()[0].order = vec![1, 2, 5, 6, 0, 3, 4];
        let b0 = dense(&p, &a, &Mapping::trivial(&p, &a));
        let b1 = dense(&p, &a, &m);
        assert!(b1.per_level[0].reads < b0.per_level[0].reads);
    }

    #[test]
    fn buffering_at_l2_reduces_dram_traffic() {
        let (p, a) = small_setup();
        let trivial = Mapping::trivial(&p, &a);
        let mut tiled = Mapping::trivial(&p, &a);
        // Move the filter loops and C inside the global buffer.
        for dim in [2usize, 5, 6] {
            tiled.levels_mut()[1].temporal[dim] = p.bound(dim);
            tiled.levels_mut()[0].temporal[dim] = 1;
        }
        tiled.validate(&p, &a).unwrap();
        let b0 = dense(&p, &a, &trivial);
        let b1 = dense(&p, &a, &tiled);
        assert!(b1.per_level[0].total() < b0.per_level[0].total());
    }

    #[test]
    fn parallelism_reduces_latency() {
        let (p, a) = small_setup();
        let serial = Mapping::trivial(&p, &a);
        let mut par = Mapping::trivial(&p, &a);
        par.levels_mut()[0].temporal[1] = 1;
        par.levels_mut()[1].spatial[1] = 8; // K across PEs
        par.validate(&p, &a).unwrap();
        let b0 = dense(&p, &a, &serial);
        let b1 = dense(&p, &a, &par);
        assert!(b1.cost.latency_cycles < b0.cost.latency_cycles);
        assert_eq!(b1.lanes, 8.0);
    }

    #[test]
    fn multicast_saves_parent_reads() {
        // Parallelize K across PEs: inputs are K-irrelevant => multicast.
        let (p, a) = small_setup();
        let mut par = Mapping::trivial(&p, &a);
        par.levels_mut()[0].temporal[1] = 1;
        par.levels_mut()[1].spatial[1] = 8;
        par.validate(&p, &a).unwrap();
        let b = dense(&p, &a, &par);
        // Inputs are K-irrelevant: each global-buffer read is multicast to
        // the 8 PEs, so per-PE fill writes (level 2) strictly exceed
        // parent-port supply reads (level 1); weights are partitioned
        // (equal on both sides) and output drains are reduced in the NoC.
        assert!(b.per_level[2].writes > b.per_level[1].reads);
    }

    #[test]
    fn energy_breakdown_is_positive_and_finite() {
        let (p, a) = small_setup();
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let m = s.random(&mut rng);
            let b = dense(&p, &a, &m);
            assert!(b.cost.energy_uj > 0.0 && b.cost.energy_uj.is_finite());
            assert!(b.cost.latency_cycles >= 1.0 && b.cost.latency_cycles.is_finite());
            for t in &b.per_level {
                assert!(t.reads >= 0.0 && t.writes >= 0.0);
            }
        }
    }

    #[test]
    fn compute_floor_is_macs_over_lanes() {
        let (p, a) = small_setup();
        let m = Mapping::trivial(&p, &a);
        let b = dense(&p, &a, &m);
        assert!(b.cost.latency_cycles >= p.total_macs() as f64 / 1.0 - 1e-9);
    }

    #[test]
    fn strict_capacity_rejects_oversized_tiles() {
        let (p, a) = small_setup();
        let mut m = Mapping::trivial(&p, &a);
        for dim in 0..7 {
            m.levels_mut()[2].temporal[dim] = p.bound(dim);
            m.levels_mut()[0].temporal[dim] = 1;
        }
        let err = analyze(&p, &a, &m, Density::DENSE, &SparseCaps::none(), CapacityMode::Strict);
        assert!(matches!(err, Err(MappingError::CapacityExceeded { .. })));
        // Soft mode evaluates with a spill penalty instead.
        let soft =
            analyze(&p, &a, &m, Density::DENSE, &SparseCaps::none(), CapacityMode::Soft).unwrap();
        assert!(soft.spill[2] > 1.0);
    }

    #[test]
    fn gemm_hand_counts_output_stationary() {
        // GEMM (B=1, M=4, K=8, N=2), everything temporal at DRAM with K
        // innermost: per-output register accumulation.
        let p = Problem::gemm("g", 1, 4, 8, 2);
        let a = Arch::accel_b();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].order = vec![0, 1, 3, 2]; // B, M, N, K (K innermost)
        let b = dense(&p, &a, &m);
        let macs = (4 * 8 * 2) as f64;
        // Outputs: K innermost is register-accumulated => one write per
        // output element, no accumulation reads.
        assert_eq!(b.per_level[0].writes, 4.0 * 2.0);
        // A[b,m,k]: innermost K relevant => refetched per MAC. W[k,n]:
        // innermost K relevant => refetched per MAC. Total DRAM reads:
        assert_eq!(b.per_level[0].reads, macs + macs);
    }

    #[test]
    fn gemm_hand_counts_weight_stationary() {
        // Same GEMM, order (K, N, B, M): W[k,n] stationary across B,M.
        let p = Problem::gemm("g", 1, 4, 8, 2);
        let a = Arch::accel_b();
        let mut m = Mapping::trivial(&p, &a);
        m.levels_mut()[0].order = vec![2, 3, 0, 1];
        let b = dense(&p, &a, &m);
        let macs = (4 * 8 * 2) as f64;
        // W reads: innermost loops (B, M) are W-irrelevant => one read per
        // (k, n) pair = 16.
        // A reads: innermost M relevant => macs.
        // Output: innermost M relevant (no register reuse) => drains = macs
        // with accumulation refills = macs - distinct(8).
        let w_reads = 16.0;
        let a_reads = macs;
        let out_refills = macs - 8.0;
        assert_eq!(b.per_level[0].reads, w_reads + a_reads + out_refills);
        assert_eq!(b.per_level[0].writes, macs);
    }

    #[test]
    fn breakdown_helpers_are_consistent() {
        let (p, a) = small_setup();
        let m = Mapping::trivial(&p, &a);
        let b = dense(&p, &a, &m);
        let by_level = b.energy_by_level(&a);
        assert_eq!(by_level.len(), 3);
        let storage: f64 = by_level.iter().sum();
        let total_pj = b.cost.energy_uj * 1e6;
        assert!(storage < total_pj);
        assert!((total_pj - storage - b.macs * a.mac_energy).abs() / total_pj < 1e-9);
        assert_eq!(b.utilization(&a), 1.0 / 1024.0);
        // compute_bound agrees with which term set the latency.
        let bw_max = b.bw_cycles.iter().copied().fold(0.0, f64::max);
        assert_eq!(b.compute_bound(), b.compute_cycles >= bw_max);
        assert!((b.cost.latency_cycles - b.compute_cycles.max(bw_max)).abs() < 1e-9);
    }

    #[test]
    fn context_matches_oneshot_analyze_dense_and_sparse() {
        // The precomputed-context path must be bit-identical to the
        // one-shot path across capability/density corners, including the
        // spill (soft capacity) and skipping branches.
        let (p, a) = small_setup();
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(21);
        let configs = [
            (Density::DENSE, SparseCaps::none(), CapacityMode::Strict),
            (Density::weight_sparse(0.3), SparseCaps::flexible(), CapacityMode::Soft),
            (Density::weight_sparse(0.05), SparseCaps::gating_only(), CapacityMode::Soft),
        ];
        for (density, caps, capacity) in configs {
            let ctx = AnalysisContext::new(&p, &a, density, &caps, capacity);
            assert_eq!(ctx.problem(), &p);
            assert_eq!(ctx.density(), density);
            for _ in 0..50 {
                let m = s.random(&mut rng);
                let oneshot = analyze(&p, &a, &m, density, &caps, capacity);
                let ctxed = ctx.analyze(&m);
                match (oneshot, ctxed) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
                    (x, y) => panic!("paths disagree: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn dram_reads_at_least_cover_each_operand_once() {
        let (p, a) = small_setup();
        let s = MapSpace::new(p.clone(), a.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        let input_size = (2 * 8 * 9 * 9) as f64;
        let weight_size = (8 * 8 * 3 * 3) as f64;
        let out_size = (2 * 8 * 7 * 7) as f64;
        for _ in 0..50 {
            let m = s.random(&mut rng);
            let b = dense(&p, &a, &m);
            assert!(b.per_level[0].reads >= input_size + weight_size - 1e-6);
            assert!(b.per_level[0].writes >= out_size - 1e-6);
        }
    }
}
