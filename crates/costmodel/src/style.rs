//! Inner- vs outer-product mapping style (§4.5.3).
//!
//! The paper observes (following SCNN / OuterSPACE) that the inner/outer
//! product distinction is *a loop-order property*: inner product keeps the
//! reduction loop innermost (dot product per output element, output
//! stationary); outer product keeps it outermost (rank-1 updates, partial
//! outputs streamed through a merge path).

use mapping::Mapping;
use problem::Problem;

/// Dataflow style of a mapping with respect to the reduction loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductStyle {
    /// Reduction innermost: per-output dot products, accumulator-friendly.
    Inner,
    /// Reduction outside the output loops: streams of partial products
    /// that must be merged.
    Outer,
}

/// Classifies a mapping by scanning its temporal loops innermost-first
/// (ignoring unit-bound and spatial loops): if the first non-unit loop is a
/// reduction dimension the mapping is inner-product style; if a non-unit
/// reduction loop exists but only *outside* some non-unit output loop, it is
/// outer-product style. Mappings with no non-unit reduction loops default to
/// [`ProductStyle::Inner`] (there is nothing to merge).
pub fn classify(problem: &Problem, m: &Mapping) -> ProductStyle {
    let mut mask = 0u64;
    for d in problem.reduction_dims() {
        mask |= 1 << d;
    }
    classify_masked(mask, m)
}

/// [`classify`] against a precomputed reduction-dimension bitmask (bit `d`
/// set ⇔ dim `d` is a reduction dim) — the per-mapping hot path used by
/// `AnalysisContext`, which hoists the mask out of the evaluation loop.
pub(crate) fn classify_masked(reduction_mask: u64, m: &Mapping) -> ProductStyle {
    let mut saw_output_loop = false;
    for l in m.nest().iter().rev() {
        if l.spatial || l.bound <= 1 {
            continue;
        }
        if reduction_mask & (1 << l.dim) != 0 {
            return if saw_output_loop { ProductStyle::Outer } else { ProductStyle::Inner };
        }
        saw_output_loop = true;
    }
    ProductStyle::Inner
}

/// A loop order (outermost first) placing all reduction dimensions
/// innermost — the canonical *inner-product* order for this problem.
pub fn order_reduction_innermost(problem: &Problem) -> Vec<usize> {
    let red = problem.reduction_dims();
    let mut order: Vec<usize> = (0..problem.num_dims()).filter(|d| !red.contains(d)).collect();
    order.extend(red);
    order
}

/// A loop order (outermost first) placing all reduction dimensions
/// outermost — the canonical *outer-product* order.
pub fn order_reduction_outermost(problem: &Problem) -> Vec<usize> {
    let red = problem.reduction_dims();
    let mut order = red.clone();
    order.extend((0..problem.num_dims()).filter(|d| !red.contains(d)));
    order
}

/// Overwrites every level's loop order, leaving tiles and parallelization
/// untouched. Used by the Table 3 harness to pin a mapping to a style while
/// the mapper searches the other two axes.
pub fn force_order(m: &mut Mapping, order: &[usize]) {
    for l in m.levels_mut() {
        l.order = order.to_vec();
    }
}

/// Overwrites a single level's loop order. Pinning only the innermost
/// level fixes the datapath's product style (which the innermost loops
/// determine) while leaving outer-level orchestration searchable.
///
/// # Panics
///
/// Panics if `level` is out of range.
pub fn force_order_at_level(m: &mut Mapping, level: usize, order: &[usize]) {
    m.levels_mut()[level].order = order.to_vec();
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Arch;
    use problem::Problem;

    fn gemm() -> Problem {
        Problem::gemm("g", 2, 8, 8, 8)
    }

    #[test]
    fn forced_orders_classify_as_expected() {
        let p = gemm();
        let a = Arch::accel_b();
        let mut m = Mapping::trivial(&p, &a);
        force_order(&mut m, &order_reduction_innermost(&p));
        assert_eq!(classify(&p, &m), ProductStyle::Inner);
        force_order(&mut m, &order_reduction_outermost(&p));
        assert_eq!(classify(&p, &m), ProductStyle::Outer);
    }

    #[test]
    fn unit_reduction_defaults_to_inner() {
        // Pointwise conv with C=1: no non-unit reduction loop anywhere.
        let p = Problem::conv2d("pw", 2, 8, 1, 8, 8, 1, 1);
        let a = Arch::accel_b();
        let m = Mapping::trivial(&p, &a);
        assert_eq!(classify(&p, &m), ProductStyle::Inner);
    }

    #[test]
    fn orders_are_permutations() {
        let p = gemm();
        for order in [order_reduction_innermost(&p), order_reduction_outermost(&p)] {
            let mut s = order.clone();
            s.sort_unstable();
            assert_eq!(s, (0..p.num_dims()).collect::<Vec<_>>());
        }
        // GEMM reduction dim is K (index 2): innermost vs outermost.
        assert_eq!(*order_reduction_innermost(&p).last().unwrap(), 2);
        assert_eq!(order_reduction_outermost(&p)[0], 2);
    }

    #[test]
    fn classification_ignores_unit_loops() {
        let p = gemm();
        let a = Arch::accel_b();
        let mut m = Mapping::trivial(&p, &a);
        // Reduction innermost at DRAM but with K fully tiled away at DRAM
        // (bound 8 still there — non-unit). Make K innermost: Inner.
        force_order(&mut m, &[0, 1, 3, 2]);
        assert_eq!(classify(&p, &m), ProductStyle::Inner);
    }
}
