//! Fig. 6 — crossover sensitivity: standard GA (no domain operators),
//! Gamma without crossover, crossover-only Gamma, and full Gamma.
//!
//! Expected shape (paper §4.4.2): full Gamma ~an order of magnitude better
//! than standard GA; disabling crossover hurts substantially;
//! crossover-only is also inadequate.

use bench::{budget, geomean, guarded_dense, header, result_row};
use mappers::{Budget, Gamma, Mapper, StandardGa};
use mse::Mse;

fn main() {
    let samples = budget(1_000, 5_000);
    let workloads = [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
    ];
    let arch = arch::Arch::accel_b();
    println!("Fig. 6: crossover sensitivity on {} ({samples} samples per run)", arch.name());

    type Variant = (&'static str, Box<dyn Fn() -> Box<dyn Mapper>>);
    let variants: Vec<Variant> = vec![
        ("Standard-GA", Box::new(|| Box::new(StandardGa::new()) as Box<dyn Mapper>)),
        ("Gamma no-crossover", Box::new(|| Box::new(Gamma::no_crossover()) as Box<dyn Mapper>)),
        ("Gamma crossover-only", Box::new(|| Box::new(Gamma::crossover_only()) as Box<dyn Mapper>)),
        ("Full Gamma", Box::new(|| Box::new(Gamma::new()) as Box<dyn Mapper>)),
    ];

    let mut ratios: Vec<(String, Vec<f64>)> =
        variants.iter().map(|(n, _)| (n.to_string(), Vec::new())).collect();
    for w in &workloads {
        header(w.name());
        let model = guarded_dense(w, &arch);
        let mse = Mse::new(&model);
        let mut best_full = f64::INFINITY;
        let mut scores = Vec::new();
        for (name, make) in &variants {
            let r = mse.run(make().as_ref(), Budget::samples(samples), 6);
            println!("{}", result_row(name, &r));
            scores.push(r.best_score);
            if *name == "Full Gamma" {
                best_full = r.best_score;
            }
        }
        for (i, s) in scores.iter().enumerate() {
            ratios[i].1.push(s / best_full);
        }
    }

    header("Summary (EDP vs full Gamma, geomean over workloads; 1.0 = full Gamma)");
    for (name, rs) in &ratios {
        println!("{name:<22} {:>8.2}x", geomean(rs.iter().copied()));
    }
}
