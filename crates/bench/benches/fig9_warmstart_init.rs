//! Fig. 9 — quality of the *initialization point* under three strategies:
//! random init, warm-start by previous layer, and warm-start by similarity,
//! normalized to the final optimized EDP of each workload.
//!
//! Expected shape (paper §5.1.3): on a regular network (VGG) the two
//! warm-start flavors tie (the most similar layer *is* the previous
//! layer); on the NAS-found MnasNet, warm-start by similarity clearly
//! beats warm-start by previous layer; both beat random init.

use arch::Arch;
use bench::{budget, geomean, header};
use mappers::{Budget, Gamma};
use mse::{run_network, InitStrategy, ReplayBuffer};
use problem::Problem;

fn run(
    layers: &[Problem],
    arch: &Arch,
    strategy: InitStrategy,
    samples: usize,
) -> Vec<(String, f64, f64)> {
    let buf = ReplayBuffer::new();
    run_network(
        layers,
        arch,
        &buf,
        strategy,
        Budget::samples(samples),
        9,
        |p| bench::guarded_dense_box(p, arch),
        || Box::new(Gamma::new()),
    )
    .into_iter()
    .map(|o| (o.name, o.init_score, o.result.best_score))
    .collect()
}

fn main() {
    let samples = budget(800, 3_000);
    let arch = Arch::accel_b();
    // A window of layers per model, as in the figure's workload IDs.
    let take = budget(6, 10);
    let models: Vec<(&str, Vec<Problem>)> = vec![
        ("VGG16", problem::zoo::vgg16().into_iter().skip(2).take(take).collect()),
        ("Mnasnet", problem::zoo::mnasnet().into_iter().skip(1).take(take).collect()),
    ];
    println!("Fig. 9: initialization quality ({samples} samples per layer search)");
    println!("values = init EDP / final optimized EDP (1.0 = already optimal)");

    for (model_name, layers) in &models {
        header(model_name);
        let random = run(layers, &arch, InitStrategy::Random, samples);
        let prev = run(layers, &arch, InitStrategy::PreviousLayer, samples);
        let simi = run(layers, &arch, InitStrategy::BySimilarity, samples);
        println!(
            "{:<24} {:>12} {:>12} {:>12}",
            "workload", "random", "prev-layer", "similarity"
        );
        let mut r_ratio = Vec::new();
        let mut p_ratio = Vec::new();
        let mut s_ratio = Vec::new();
        for i in 0..layers.len() {
            // Normalize by the best final EDP across strategies for a
            // stable reference.
            let fin = random[i].2.min(prev[i].2).min(simi[i].2);
            let (r, p, s) = (random[i].1 / fin, prev[i].1 / fin, simi[i].1 / fin);
            println!("{:<24} {r:>12.2} {p:>12.2} {s:>12.2}", random[i].0);
            if i > 0 {
                // The first layer has an empty replay buffer.
                r_ratio.push(r);
                p_ratio.push(p);
                s_ratio.push(s);
            }
        }
        println!(
            "geomean (layers 2+):     {:>12.2} {:>12.2} {:>12.2}",
            geomean(r_ratio.iter().copied()),
            geomean(p_ratio.iter().copied()),
            geomean(s_ratio.iter().copied())
        );
    }
    println!();
    println!("Paper reference: warm-start inits are 2.1x / 4.3x better than random on");
    println!("VGG / Mnasnet; similarity beats previous-layer by ~2x on Mnasnet only.");
}
