//! Fig. 11 — warm-start across whole networks: (a) the EDP of the found
//! mappings matches default MSE, while (b) convergence is 3.3x–7.3x
//! faster (fewest speedup on the NAS-found, irregular MnasNet).

use arch::Arch;
use bench::{budget, geomean, header};
use mappers::{Budget, Gamma};
use mse::{run_network, samples_to_reach, InitStrategy, ReplayBuffer};
use problem::Problem;

fn main() {
    let samples = budget(800, 3_000);
    let arch = Arch::accel_b();
    let take = budget(8, 64);
    let models: Vec<(&str, Vec<Problem>)> = vec![
        ("Resnet50", problem::zoo::resnet50().into_iter().take(take).collect()),
        ("VGG16", problem::zoo::vgg16().into_iter().take(take).collect()),
        ("MobilenetV2", problem::zoo::mobilenet_v2().into_iter().take(take).collect()),
        ("Mnasnet", problem::zoo::mnasnet().into_iter().take(take).collect()),
    ];
    println!(
        "Fig. 11: whole-network warm-start ({samples} samples/layer, {take} layers/model)"
    );

    header("per-model summary");
    println!(
        "{:<14} {:>16} {:>20} {:>14}",
        "model", "EDP ratio (geo)", "converge speedup", "layers"
    );
    for (name, layers) in &models {
        let run = |strategy: InitStrategy| {
            let buf = ReplayBuffer::new();
            run_network(
                layers,
                &arch,
                &buf,
                strategy,
                Budget::samples(samples),
                11,
                |p| bench::guarded_dense_box(p, &arch),
                || Box::new(Gamma::new()),
            )
        };
        let cold = run(InitStrategy::Random);
        let warm = run(InitStrategy::BySimilarity);
        // (a) quality parity: warm EDP / cold EDP per layer.
        let quality = geomean(
            cold.iter().zip(&warm).map(|(c, w)| w.result.best_score / c.result.best_score),
        );
        // (b) speedup: samples each run needs to reach a *similar
        // performance point* (0.5% above the worse of the two finals),
        // skipping the first layer, whose replay buffer is empty.
        let speedup = geomean(cold.iter().zip(&warm).skip(1).map(|(c, w)| {
            let target = 1.005 * c.result.best_score.max(w.result.best_score);
            let cs = samples_to_reach(&c.result, target).unwrap_or(c.result.evaluated);
            let ws = samples_to_reach(&w.result, target).unwrap_or(w.result.evaluated);
            cs as f64 / ws.max(1) as f64
        }));
        println!("{name:<14} {quality:>16.3} {speedup:>19.1}x {:>14}", layers.len());
    }
    println!();
    println!("Paper reference: EDP ratio ~1.0 (same quality); speedups 3.3x-7.3x,");
    println!("with Mnasnet (irregular NAS shapes) at the low end.");
}
