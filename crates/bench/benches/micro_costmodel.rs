//! Criterion microbench: cost-model evaluation throughput. Supports the
//! Fig. 3 iso-time discussion — the paper's stack evaluates one mapping in
//! ~1 ms; this analytical engine is orders of magnitude faster, which is
//! why the harness also reports overhead-charged curves.

use costmodel::{CostModel, DenseModel, SparseModel};
use criterion::{criterion_group, criterion_main, Criterion};
use mapping::MapSpace;
use problem::Density;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_eval(c: &mut Criterion) {
    let w = problem::zoo::resnet_conv4();
    let a = arch::Arch::accel_b();
    let dense = DenseModel::new(w.clone(), a.clone());
    let sparse = SparseModel::new(
        w.clone(),
        a.clone(),
        arch::SparseCaps::flexible(),
        Density::weight_sparse(0.1),
    );
    let space = MapSpace::new(w, a);
    let mut rng = SmallRng::seed_from_u64(0);
    let mappings: Vec<_> = (0..64).map(|_| space.random(&mut rng)).collect();

    let mut i = 0usize;
    c.bench_function("dense_evaluate_resnet_conv4", |b| {
        b.iter(|| {
            i = (i + 1) % mappings.len();
            std::hint::black_box(dense.evaluate(&mappings[i]).unwrap())
        })
    });
    let mut j = 0usize;
    c.bench_function("sparse_evaluate_resnet_conv4", |b| {
        b.iter(|| {
            j = (j + 1) % mappings.len();
            std::hint::black_box(sparse.evaluate(&mappings[j]).unwrap())
        })
    });
    let mut k = 0usize;
    c.bench_function("random_mapping_sample", |b| {
        b.iter(|| {
            k += 1;
            std::hint::black_box(space.random(&mut rng))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_eval
}
criterion_main!(benches);
