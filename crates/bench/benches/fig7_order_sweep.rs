//! Fig. 7 — exhaustive loop-order sweep: take the Gamma-optimized mapping
//! of (Resnet Conv_4, Accel-B), then enumerate all 7! = 5,040 loop orders
//! (the same order applied at every buffer level, the paper's complexity
//! relaxation) and measure EDP for each.
//!
//! Expected shape (paper §4.4.3): only a *handful* of distinct EDP values
//! (16 in the paper) emerge from the 5,040 permutations, with best/worst
//! differing by ~14x; permutations group into "stationarity buckets"
//! recognizable by their leading dimensions.

use bench::{budget, edp_fmt, guarded_dense, header};
use costmodel::CostModel;
use mappers::{Budget, Gamma};
use mapping::permutation::{factorial, nth_permutation};
use mse::Mse;
use std::collections::BTreeMap;

fn main() {
    let w = problem::zoo::resnet_conv4();
    let arch = arch::Arch::accel_b();
    let model = guarded_dense(&w, &arch);
    let mse = Mse::new(&model);

    header("Fig. 7: optimize a mapping, then sweep all 7! orders");
    let r = mse.run(&Gamma::new(), Budget::samples(budget(1_500, 5_000)), 7);
    let (base, cost) = r.best.expect("gamma found a mapping");
    println!(
        "optimized mapping: EDP {} (cycles uJ), latency {:.1E} cycles, energy {:.1E} uJ",
        edp_fmt(cost.edp()),
        cost.latency_cycles,
        cost.energy_uj
    );

    let d = w.num_dims();
    let total = factorial(d);
    // Bucket EDPs (3 significant digits — distinct performance classes).
    let mut buckets: BTreeMap<u64, (f64, usize, Vec<usize>)> = BTreeMap::new();
    let mut best = f64::INFINITY;
    let mut worst = 0.0f64;
    let mut legal = 0usize;
    for idx in 0..total {
        let order = nth_permutation(d, idx);
        let mut m = base.clone();
        for l in m.levels_mut() {
            l.order = order.clone();
        }
        let Ok(c) = model.evaluate(&m) else { continue };
        legal += 1;
        let edp = c.edp();
        best = best.min(edp);
        worst = worst.max(edp);
        let key = (edp.log10() * 200.0).round() as u64; // ~0.5% resolution
        let e = buckets.entry(key).or_insert((edp, 0, order.clone()));
        e.1 += 1;
    }
    println!(
        "swept {total} orders ({legal} legal): {} distinct EDP classes",
        buckets.len()
    );
    println!("best {} / worst {} -> ratio {:.1}x", edp_fmt(best), edp_fmt(worst), worst / best);
    println!();
    println!("{:>4} {:>12} {:>7}  representative leading dims", "#", "EDP", "count");
    let letters: Vec<char> = w.dims().iter().map(|dd| dd.name.letter()).collect();
    for (i, (_, (edp, count, order))) in buckets.iter().enumerate() {
        let lead: String = order.iter().take(2).map(|&o| letters[o]).collect();
        println!("{:>4} {:>12} {:>7}  {lead}..", i + 1, edp_fmt(*edp), count);
    }
    println!();
    println!("Paper reference: 16 distinct EDP values, best/worst ratio 14.4x;");
    println!("the Gamma-found order falls in the best class.");
    let base_edp = cost.edp();
    println!(
        "Gamma's order is within {:.1}% of the best swept class.",
        100.0 * (base_edp / best - 1.0)
    );
}
