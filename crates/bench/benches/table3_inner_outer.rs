//! Table 3 — inner- vs outer-product style mappings on sparse-dense GEMMs
//! from BERT-large, across weight densities.
//!
//! The style is a loop-order property (§4.5.3), so the harness pins the
//! order (reduction innermost = inner product; reduction outermost = outer
//! product) and lets Gamma search tiles and parallelism only.
//!
//! Expected shape: inner product wins at density ≥ 0.5; outer product wins
//! at density ≤ 0.1.

use arch::SparseCaps;
use bench::{budget, edp_fmt, guarded_sparse, header, ForcedOrderEvaluator};
use costmodel::style::{order_reduction_innermost, order_reduction_outermost};
use mappers::{Budget, EdpEvaluator, Gamma, GammaConfig};
use mse::Mse;
use problem::Density;

fn main() {
    let samples = budget(1_000, 5_000);
    let densities = [1.0, 0.5, 0.1, 0.01];
    let workloads = problem::zoo::bert_large();
    let arch = arch::Arch::accel_b();
    let caps = SparseCaps::flexible();
    println!("Table 3: inner vs outer product on Bert-large sparse-dense GEMMs");
    println!("({samples} samples per search; EDP in cycles*uJ)");

    println!();
    print!("{:>8} |", "density");
    for w in &workloads {
        print!("{:>14}{:>14}", format!("{} In", short(w.name())), format!("{} Out", short(w.name())));
    }
    println!();

    let mut inner_wins_dense = 0usize;
    let mut outer_wins_sparse = 0usize;
    let mut dense_cases = 0usize;
    let mut sparse_cases = 0usize;
    for &dw in &densities {
        print!("{dw:>8} |");
        for w in &workloads {
            let model = guarded_sparse(w, &arch, caps, Density::weight_sparse(dw));
            let mse = Mse::new(&model);
            let base_eval = EdpEvaluator::new(&model);
            // The datapath style is pinned at the innermost level; outer
            // orchestration orders remain searchable (symmetrically for
            // both styles).
            let gamma = Gamma::with_config(GammaConfig::default());
            let mut styles = Vec::new();
            for (order, style) in [
                (order_reduction_innermost(w), costmodel::style::ProductStyle::Inner),
                (order_reduction_outermost(w), costmodel::style::ProductStyle::Outer),
            ] {
                let eval =
                    ForcedOrderEvaluator::with_style(&base_eval, order, w.clone(), style);
                // Best of two seeds: single-seed search variance would
                // otherwise blur the crossover at the sparse end.
                let best = [3u64, 13]
                    .iter()
                    .map(|&seed| {
                        mse.run_with_evaluator(&gamma, &eval, Budget::samples(samples), seed)
                            .best_score
                    })
                    .fold(f64::INFINITY, f64::min);
                styles.push(best);
            }
            print!("{:>14}{:>14}", edp_fmt(styles[0]), edp_fmt(styles[1]));
            if dw >= 0.5 {
                dense_cases += 1;
                if styles[0] <= styles[1] {
                    inner_wins_dense += 1;
                }
            }
            if dw <= 0.1 {
                sparse_cases += 1;
                if styles[1] <= styles[0] {
                    outer_wins_sparse += 1;
                }
            }
        }
        println!();
    }
    header("Summary");
    println!("inner product wins at density >= 0.5 in {inner_wins_dense}/{dense_cases} cases");
    println!("outer product wins at density <= 0.1 in {outer_wins_sparse}/{sparse_cases} cases");
    println!("(paper: inner consistently wins >= 0.5, outer has the edge < 0.1)");
}

fn short(name: &str) -> &str {
    name.rsplit(' ').next().unwrap_or(name)
}
