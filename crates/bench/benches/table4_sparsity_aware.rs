//! Table 4 — sparsity-aware MSE vs static-density baselines for dynamic
//! activation sparsity.
//!
//! Each strategy searches once; the found (fixed) mapping is then tested
//! across activation densities 1.0–0.05, most of which the search never
//! saw. Expected shape: the sparsity-aware mapping tracks the best
//! static-density mapping at every level (the paper reports 99.7% geomean
//! relative performance).

use arch::SparseCaps;
use bench::{budget, edp_fmt, geomean, guarded_sparse, header};
use mappers::{Budget, Gamma};
use mse::{
    density_sweep, Mse, SparsityAwareEvaluator, StaticDensityEvaluator,
    DEFAULT_SEARCH_DENSITIES,
};
use problem::Density;

fn main() {
    let samples = budget(1_500, 6_000);
    let test_densities = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05];
    let static_levels = [1.0, 0.5, 0.1];
    let workloads = [problem::zoo::resnet_conv3(), problem::zoo::inception_conv2()];
    let arch = arch::Arch::accel_b();
    let caps = SparseCaps::flexible();
    println!("Table 4: sparsity-aware vs static-density ({samples} samples per search)");
    println!(
        "sparsity-aware sees densities {:?} at search time only",
        DEFAULT_SEARCH_DENSITIES
    );

    let mut overall = Vec::new();
    for w in &workloads {
        header(&format!("{}, {}", w.name(), arch.name()));
        let model = guarded_sparse(w, &arch, caps, Density::DENSE);
        let mse = Mse::new(&model);

        // Two independent seeds per strategy; keep the better run (search
        // variance otherwise dominates the comparison at small budgets).
        let best_of = |mapper: &Gamma, eval: &dyn mappers::Evaluator| {
            [4u64, 14]
                .iter()
                .map(|&seed| {
                    mse.run_with_evaluator(mapper, eval, Budget::samples(samples), seed)
                })
                .min_by(|a, b| a.best_score.partial_cmp(&b.best_score).expect("finite"))
                .and_then(|r| r.best)
                .expect("search found a mapping")
                .0
        };
        let mut statics = Vec::new();
        for &lvl in &static_levels {
            let eval = StaticDensityEvaluator::new(w.clone(), arch.clone(), caps, lvl);
            statics.push(best_of(&Gamma::new(), &eval));
        }
        // The sparsity-aware search composes with the paper's other
        // technique: it is warm-started (§5.1) from the static-density
        // solutions, then refines under the density-sweep objective.
        let aware_eval =
            SparsityAwareEvaluator::new(w.clone(), arch.clone(), caps, &DEFAULT_SEARCH_DENSITIES);
        let mut aware_gamma = Gamma::new();
        use mappers::Mapper as _;
        aware_gamma.set_seeds(statics.clone());
        let aware = best_of(&aware_gamma, &aware_eval);

        print!("{:>8} {:>14}", "density", "sparsity-aware");
        for &lvl in &static_levels {
            print!("{:>14}", format!("static {lvl}"));
        }
        println!();
        let aware_rows = density_sweep(w, &arch, caps, &aware, &test_densities);
        let static_rows: Vec<Vec<(f64, f64)>> = statics
            .iter()
            .map(|m| density_sweep(w, &arch, caps, m, &test_densities))
            .collect();
        let mut rel = Vec::new();
        for (i, &d) in test_densities.iter().enumerate() {
            let aware_edp = aware_rows[i].1;
            let best_static = static_rows
                .iter()
                .map(|r| r[i].1)
                .fold(f64::INFINITY, f64::min);
            print!("{d:>8} {:>14}", edp_fmt(aware_edp));
            for r in &static_rows {
                print!("{:>14}", edp_fmt(r[i].1));
            }
            let best_any = best_static.min(aware_edp);
            let mark = if aware_edp <= best_any * 1.001 { "  <-best" } else { "" };
            println!("{mark}");
            // Relative performance vs the per-density specialist, capped
            // at 100% (beating the specialist counts as 100%).
            rel.push((best_static / aware_edp).min(1.0));
        }
        let g = geomean(rel.iter().copied());
        println!(
            "sparsity-aware achieves {:.1}% of the best per-density static mapping (geomean)",
            100.0 * g
        );
        overall.extend(rel);
    }
    header("Summary");
    let g = geomean(overall.iter().copied());
    println!(
        "geomean relative performance of the single sparsity-aware mapping vs the \
         per-density specialists: {:.1}% (paper: 99.7%)",
        100.0 * g
    );
}
