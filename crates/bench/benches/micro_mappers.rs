//! Criterion microbench: per-sample cost of each mapper (search-algorithm
//! overhead on top of the cost model). The paper reports the learned
//! mappers' per-sample cost at ~10x Random-Pruned's; this measures the
//! equivalent ratio for our implementations.

use costmodel::DenseModel;
use criterion::{criterion_group, criterion_main, Criterion};
use mappers::{Budget, EdpEvaluator, Gamma, Mapper, RandomMapper, RandomPruned, StandardGa};
use mapping::MapSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_mappers(c: &mut Criterion) {
    let w = problem::zoo::resnet_conv4();
    let a = arch::Arch::accel_b();
    let model = DenseModel::new(w.clone(), a.clone());
    let space = MapSpace::new(w, a);
    let samples = 300usize;

    let mut group = c.benchmark_group("mapper_300_samples");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));

    macro_rules! bench_mapper {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let eval = EdpEvaluator::new(&model);
                    let mut rng = SmallRng::seed_from_u64(1);
                    let mapper = $make;
                    std::hint::black_box(mapper.search(
                        &space,
                        &eval,
                        Budget::samples(samples),
                        &mut rng,
                    ))
                })
            });
        };
    }
    bench_mapper!("random", RandomMapper::new());
    bench_mapper!("random_pruned", RandomPruned::new());
    bench_mapper!("gamma", Gamma::new());
    bench_mapper!("standard_ga", StandardGa::new());
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
