//! Criterion microbench: batch-evaluation throughput through the parallel
//! evaluation stack (DESIGN.md §9). Compares the serial baseline against
//! the worker pool and the evaluation cache on the same mapping batch, so
//! regressions in pool dispatch overhead or cache-key canonicalization
//! show up as a ratio change rather than an absolute-time guess.

use costmodel::DenseModel;
use criterion::{criterion_group, criterion_main, Criterion};
use mappers::{EdpEvaluator, Evaluator};
use mapping::MapSpace;
use mse::{CachedEvaluator, EvalCache, EvalConfig, EvalPool, PoolEvaluator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCH: usize = 256;

fn bench_throughput(c: &mut Criterion) {
    let w = problem::zoo::resnet_conv4();
    let a = arch::Arch::accel_b();
    let model = DenseModel::new(w.clone(), a.clone());
    let eval = EdpEvaluator::new(&model);
    let space = MapSpace::new(w, a);
    let mut rng = SmallRng::seed_from_u64(0);
    let batch: Vec<_> = (0..BATCH).map(|_| space.random(&mut rng)).collect();

    c.bench_function("serial_batch_256", |b| {
        b.iter(|| std::hint::black_box(eval.evaluate_batch(&batch)))
    });

    let pool = EvalPool::new(EvalConfig { threads: 0, cache_capacity: 0 });
    let pooled = PoolEvaluator::new(&pool, &eval);
    c.bench_function(&format!("pooled_batch_256_{}lanes", pool.lanes()), |b| {
        b.iter(|| std::hint::black_box(pooled.evaluate_batch(&batch)))
    });

    // Warm cache: after the first iteration every lookup hits, so this
    // measures canonicalize + shard lookup — the cache's steady state on
    // a converged GA population.
    let cache = EvalCache::new(1 << 16);
    let cached = CachedEvaluator::new(&cache, &eval);
    let _ = cached.evaluate_batch(&batch);
    c.bench_function("cached_batch_256_warm", |b| {
        b.iter(|| std::hint::black_box(cached.evaluate_batch(&batch)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_throughput
}
criterion_main!(benches);
