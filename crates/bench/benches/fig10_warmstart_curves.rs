//! Fig. 10 — convergence curves with random vs warm-start initialization
//! for (a) the first layer of VGG16 (empty replay buffer: no difference)
//! and (b) a later layer (warm-start starts better and converges faster).

use arch::Arch;
use bench::{budget, checkpoints, curve, edp_fmt, header};
use mappers::{Budget, Gamma};
use mse::{run_network, samples_to_reach, InitStrategy, ReplayBuffer};

fn main() {
    let samples = budget(1_000, 4_000);
    let arch = Arch::accel_b();
    let layers = problem::zoo::vgg16();
    println!("Fig. 10: warm-start convergence on VGG16 ({samples} samples per layer)");

    let run = |strategy: InitStrategy| {
        let buf = ReplayBuffer::new();
        run_network(
            &layers,
            &arch,
            &buf,
            strategy,
            Budget::samples(samples),
            10,
            |p| bench::guarded_dense_box(p, &arch),
            || Box::new(Gamma::new()),
        )
    };
    let cold = run(InitStrategy::Random);
    let warm = run(InitStrategy::BySimilarity);

    for (title, idx) in [("(a) VGG Conv_1 (first layer)", 0usize), ("(b) VGG Conv_13 (later layer)", layers.len() - 1)] {
        header(title);
        let cps = checkpoints(samples);
        println!("{:>10} {:>16} {:>16}", "samples", "random-init", "warm-start");
        let cc = curve(&cold[idx].result.history, &cps);
        let wc = curve(&warm[idx].result.history, &cps);
        for (i, &cp) in cps.iter().enumerate() {
            let c = cc.get(i).map(|&(_, v)| edp_fmt(v)).unwrap_or_else(|| "-".into());
            let w = wc.get(i).map(|&(_, v)| edp_fmt(v)).unwrap_or_else(|| "-".into());
            println!("{cp:>10} {c:>16} {w:>16}");
        }
        // Time to reach a *similar performance point* (the paper's
        // warm-start metric): 0.5% above the worse of the two finals.
        let target = 1.005 * cold[idx].result.best_score.max(warm[idx].result.best_score);
        let cs = samples_to_reach(&cold[idx].result, target).unwrap_or(usize::MAX);
        let ws = samples_to_reach(&warm[idx].result, target).unwrap_or(usize::MAX);
        println!("samples to reach the common target: random {cs}, warm-start {ws}");
    }
    println!();
    println!("Expected: no difference on the first layer; on the later layer the");
    println!("warm-start curve starts lower and reaches its floor sooner.");
}
