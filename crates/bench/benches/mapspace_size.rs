//! §4.2 — size of the map space: ordered tile factorizations × loop-order
//! permutations × parallelization choices, per Table 1 workload.
//!
//! Expected shape: ~O(10^20)–O(10^24) for the CONV2D workloads on a
//! 3-level hierarchy (the paper quotes O(10^21) / O(10^24)).

use bench::header;
use mapping::MapSpace;

fn main() {
    let workloads = [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
        problem::zoo::bert_kqv(),
        problem::zoo::bert_attn(),
        problem::zoo::bert_fc(),
    ];
    for arch in [arch::Arch::accel_a(), arch::Arch::accel_b()] {
        header(&format!("map-space sizes on {}", arch.name()));
        println!("{:<22} {:>14}", "workload", "log10(|space|)");
        for w in &workloads {
            let s = MapSpace::new(w.clone(), arch.clone());
            println!("{:<22} {:>14.1}", w.name(), s.size_log10());
        }
    }
    println!();
    println!("Paper reference: ~O(10^21) for the §4.1 workloads (up to O(10^24)).");
}
