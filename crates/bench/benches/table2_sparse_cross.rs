//! Table 2 — MSE for weight-sparse workloads: optimize a mapping per
//! weight-density level, then cross-test each optimized mapping at every
//! other density.
//!
//! Expected shape (paper §4.5.2): the best EDP in each row sits on the
//! diagonal (the mapping tuned for that density) — a dense-optimal mapping
//! does not port to sparse workloads and vice versa.

use arch::SparseCaps;
use bench::{budget, edp_fmt, guarded_sparse, header};
use mappers::{Budget, EdpEvaluator, Gamma};
use mse::{weight_density_sweep, Mse};
use problem::Density;

fn main() {
    let samples = budget(2_500, 8_000);
    let densities = [1.0, 0.5, 0.1, 0.01];
    let workloads = [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
    ];
    let arch = arch::Arch::accel_b();
    let caps = SparseCaps::flexible();
    println!("Table 2: weight-sparsity cross-testing on a flexible sparse accelerator");
    println!("({} samples per search; EDP in cycles*uJ; [x] = optimized-for cell)", samples);

    let mut diag_wins = 0usize;
    let mut rows_total = 0usize;
    for w in &workloads {
        header(w.name());
        // One optimized mapping per target density (the columns); best of
        // two seeds so that diagonal dominance is not blurred by
        // single-run search variance at quick-mode budgets.
        let mut tuned = Vec::new();
        for &dw in &densities {
            let model = guarded_sparse(w, &arch, caps, Density::weight_sparse(dw));
            let mse = Mse::new(&model);
            let eval = EdpEvaluator::new(&model);
            let r = [2u64, 12, 22]
                .iter()
                .map(|&seed| {
                    mse.run_with_evaluator(&Gamma::new(), &eval, Budget::samples(samples), seed)
                })
                .min_by(|a, b| a.best_score.partial_cmp(&b.best_score).expect("finite"))
                .expect("two runs");
            tuned.push(r.best.expect("search found a mapping").0);
        }
        // Cross-test: row = tested density, column = mapping tuned for.
        print!("{:>8} |", "tested\\");
        for &dw in &densities {
            print!("{:>14}", format!("tuned@{dw}"));
        }
        println!();
        for (ri, &dr) in densities.iter().enumerate() {
            print!("{dr:>8} |");
            let mut row = Vec::new();
            for m in &tuned {
                let rows = weight_density_sweep(w, &arch, caps, m, &[dr]);
                row.push(rows[0].1);
            }
            let best = row.iter().cloned().fold(f64::INFINITY, f64::min);
            for (ci, v) in row.iter().enumerate() {
                let mark = if ci == ri { "[x]" } else if *v == best { " * " } else { "   " };
                print!("{:>11}{mark}", edp_fmt(*v));
            }
            println!();
            rows_total += 1;
            if row[ri] <= best * 1.0001 {
                diag_wins += 1;
            }
        }
    }
    println!();
    println!(
        "diagonal (tuned-for) mapping is the row-best in {diag_wins}/{rows_total} rows \
         (paper: all rows — a dense mapping cannot generalize across sparsity)"
    );
}
