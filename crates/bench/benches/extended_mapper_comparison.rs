//! Extended mapper comparison — beyond the paper's three families, this
//! pits every mapper in the workspace against each other on the Table 1
//! workloads: random, random-pruned, standard GA, Gamma (scalar and
//! NSGA-II), simulated annealing, hill climbing, cross-entropy, and
//! REINFORCE. (Mind Mappings is covered by `fig3_mapper_comparison`,
//! which owns the surrogate training.)
//!
//! Expected: Gamma at or near the top across workloads (the paper's
//! feedback-based takeaway, extended to a wider field).

use bench::{budget, edp_fmt, geomean, guarded_dense, header};
use mappers::{
    Budget, CrossEntropy, Gamma, GammaConfig, HillClimb, Mapper, RandomMapper, RandomPruned,
    Reinforce, Selection, SimulatedAnnealing, StandardGa,
};
use mse::Mse;

fn main() {
    let samples = budget(1_000, 5_000);
    let workloads = [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
        problem::zoo::bert_kqv(),
    ];
    let arch = arch::Arch::accel_b();
    println!(
        "Extended mapper comparison on {} ({samples} samples, best of 3 seeds)",
        arch.name()
    );

    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("Random", Box::new(RandomMapper::new())),
        ("Random-Pruned", Box::new(RandomPruned::new())),
        ("Standard-GA", Box::new(StandardGa::new())),
        ("Gamma", Box::new(Gamma::new())),
        (
            "Gamma-NSGA2",
            Box::new(Gamma::with_config(GammaConfig {
                selection: Selection::Nsga2,
                ..GammaConfig::default()
            })),
        ),
        ("Annealing", Box::new(SimulatedAnnealing::new())),
        ("Hill-Climb", Box::new(HillClimb::new())),
        ("Cross-Entropy", Box::new(CrossEntropy::new())),
        ("REINFORCE", Box::new(Reinforce::new())),
    ];

    let mut table: Vec<(String, Vec<f64>)> =
        mappers.iter().map(|(n, _)| (n.to_string(), Vec::new())).collect();
    for w in &workloads {
        header(w.name());
        let model = guarded_dense(w, &arch);
        let mse = Mse::new(&model);
        let mut best_overall = f64::INFINITY;
        let mut scores = Vec::new();
        for (name, mapper) in &mappers {
            let mut best = f64::INFINITY;
            for seed in 0..3u64 {
                let r = mse.run(mapper.as_ref(), Budget::samples(samples), seed);
                best = best.min(r.best_score);
            }
            println!("{name:<16} best EDP {}", edp_fmt(best));
            best_overall = best_overall.min(best);
            scores.push(best);
        }
        for (row, s) in table.iter_mut().zip(&scores) {
            row.1.push(s / best_overall);
        }
    }

    header("Summary (geomean EDP vs per-workload winner; 1.00 = always best)");
    let mut rows: Vec<(String, f64)> =
        table.into_iter().map(|(n, v)| (n, geomean(v))).collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, g) in rows {
        println!("{name:<16} {g:>6.2}x");
    }
}
