//! Fig. 4 — PCA visualization of how each mapper navigates the map space
//! of (Resnet Conv_4, Accel-A).
//!
//! (a) A large random sample of the space is projected onto its top-3
//! principal components; the high-performance points cluster in small
//! regions away from the bulk. (b) The points each mapper actually sampled
//! are projected into the same basis. The harness prints per-mapper
//! summaries (and optional CSV with `MSE_CSV=1`): how close each mapper's
//! best sampled points get to the global high-performance region, and the
//! quality distribution of its samples.

use bench::{budget, edp_fmt, guarded_dense, header};
use costmodel::CostModel;
use linalg::Pca;
use mappers::{Budget, Gamma, GammaConfig, Mapper, RandomPruned};
use mapping::features::features;
use mapping::MapSpace;
use mse::Mse;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use surrogate::{MindMappings, MindMappingsConfig, Surrogate, TrainConfig};

fn main() {
    let w = problem::zoo::resnet_conv4();
    let a = arch::Arch::accel_a();
    let model = guarded_dense(&w, &a);
    let space = MapSpace::new(w.clone(), a.clone());
    let n_background = budget(3_000, 20_000);
    let n_mapper = budget(800, 5_000);
    let csv = std::env::var("MSE_CSV").is_ok_and(|v| v == "1");

    header("Fig. 4(a): map-space background sample + PCA basis");
    let mut rng = SmallRng::seed_from_u64(4);
    let mut feats = Vec::with_capacity(n_background);
    let mut edps = Vec::with_capacity(n_background);
    while feats.len() < n_background {
        let m = space.random(&mut rng);
        let Ok(c) = model.evaluate(&m) else { continue };
        feats.push(features(&m));
        edps.push(c.edp());
    }
    let pca = Pca::fit(&feats, 3);
    println!(
        "background: {} points, PCA explained variance {:?}",
        feats.len(),
        pca.explained_variance_ratio()
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
    );
    let mut sorted = edps.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let p01 = sorted[feats.len() / 100];
    let median = sorted[feats.len() / 2];
    println!("EDP spread: best {}, p1 {}, median {}, worst {}",
        edp_fmt(sorted[0]), edp_fmt(p01), edp_fmt(median), edp_fmt(*sorted.last().unwrap()));
    // Centroid of the top-1% region — the "green circle" of Fig. 4(a).
    let top: Vec<usize> =
        (0..feats.len()).filter(|&i| edps[i] <= p01).collect();
    let centroid = |idx: &[usize]| -> Vec<f64> {
        let mut c = vec![0.0; 3];
        for &i in idx {
            let p = pca.transform(&feats[i]);
            for k in 0..3 {
                c[k] += p[k] / idx.len() as f64;
            }
        }
        c
    };
    let top_centroid = centroid(&top);
    let all_idx: Vec<usize> = (0..feats.len()).collect();
    let bulk_centroid = centroid(&all_idx);
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    };
    println!(
        "top-1% region centroid is {:.2} PCA units from the bulk centroid",
        dist(&top_centroid, &bulk_centroid)
    );
    if csv {
        println!("csv,background,pc1,pc2,pc3,edp");
        for (f, e) in feats.iter().zip(&edps).take(2_000) {
            let p = pca.transform(f);
            println!("csv,background,{:.4},{:.4},{:.4},{e:.4e}", p[0], p[1], p[2]);
        }
    }

    header("Fig. 4(b): points sampled by each mapper");
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    let (sur, _) = Surrogate::train(
        &[&model],
        &TrainConfig { samples_per_workload: budget(4_000, 20_000), ..TrainConfig::default() },
        &mut rng,
    );
    let mut mm = MindMappings::new(Arc::new(sur));
    mm.config = MindMappingsConfig { record_samples: true, ..MindMappingsConfig::default() };
    let gamma_cfg = GammaConfig { record_samples: true, ..GammaConfig::default() };
    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("Random-Pruned", Box::new(RandomPruned::new().with_sample_recording())),
        ("Gamma", Box::new(Gamma::with_config(gamma_cfg))),
        ("Mind-Mappings", Box::new(mm)),
    ];
    // Projected coordinates of the top-1% background points (the
    // high-performance clusters of Fig. 4(a)).
    let top_points: Vec<Vec<f64>> = top.iter().map(|&i| pca.transform(&feats[i])).collect();
    let mse = Mse::new(&model);
    for (name, mapper) in &mappers {
        let r = mse.run(mapper.as_ref(), Budget::samples(n_mapper), 11);
        // The mapper's best 5% of samples: how close do they get to the
        // nearest high-performance cluster?
        let mut qs: Vec<(f64, &Vec<f64>)> =
            r.samples.iter().map(|(f, s)| (*s, f)).collect();
        qs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let elite = &qs[..(qs.len() / 20).max(1)];
        let mut near = Vec::with_capacity(elite.len());
        for (_, f) in elite {
            let p = pca.transform(f);
            let d = top_points
                .iter()
                .map(|t| dist(&p, t))
                .fold(f64::INFINITY, f64::min);
            near.push(d);
        }
        near.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_near = near[near.len() / 2];
        let frac_in_top = r
            .samples
            .iter()
            .filter(|(_, s)| *s <= p01)
            .count() as f64
            / r.samples.len() as f64;
        println!(
            "{name:<16} best {:>9}  median elite dist to nearest top cluster {:>6.2}  {:>5.1}% of samples in top-1% region",
            edp_fmt(r.best_score),
            median_near,
            100.0 * frac_in_top
        );
        if csv {
            println!("csv,{name},pc1,pc2,edp");
            for (f, s) in r.samples.iter().take(1_000) {
                let p = pca.transform(f);
                println!("csv,{name},{:.4},{:.4},{s:.4e}", p[0], p[1]);
            }
        }
    }
    println!();
    println!("Expected shape: Random-Pruned stays in the bulk (low-performing) region;");
    println!("Mind-Mappings walks toward a better region but parks at a local optimum;");
    println!("Gamma's population reaches the high-performance region.");
}
