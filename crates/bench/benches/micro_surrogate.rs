//! Criterion microbench: surrogate training and inference rates. Backs the
//! DESIGN.md substitution note — the paper's surrogate needed a GPU and
//! millions of samples; ours trains in seconds on CPU, which is why the
//! Mind-Mappings comparison can run inside the bench suite.

use costmodel::DenseModel;
use criterion::{criterion_group, criterion_main, Criterion};
use mapping::features::features;
use mapping::MapSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use surrogate::{Surrogate, TrainConfig};

fn bench_surrogate(c: &mut Criterion) {
    let w = problem::zoo::resnet_conv4();
    let a = arch::Arch::accel_a();
    let model = DenseModel::new(w.clone(), a.clone());

    let mut group = c.benchmark_group("surrogate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("train_2k_samples_5_epochs", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(0);
            let cfg = TrainConfig {
                samples_per_workload: 2_000,
                epochs: 5,
                ..TrainConfig::default()
            };
            std::hint::black_box(Surrogate::train(&[&model], &cfg, &mut rng))
        })
    });

    let mut rng = SmallRng::seed_from_u64(1);
    let cfg = TrainConfig { samples_per_workload: 1_000, epochs: 5, ..TrainConfig::default() };
    let (sur, _) = Surrogate::train(&[&model], &cfg, &mut rng);
    let space = MapSpace::new(w.clone(), a);
    let feats: Vec<Vec<f64>> = (0..64).map(|_| features(&space.random(&mut rng))).collect();

    let mut i = 0usize;
    group.bench_function("predict_edp", |b| {
        b.iter(|| {
            i = (i + 1) % feats.len();
            std::hint::black_box(sur.predict_edp_log(&w, &feats[i]))
        })
    });
    let mut j = 0usize;
    group.bench_function("edp_gradient", |b| {
        b.iter(|| {
            j = (j + 1) % feats.len();
            std::hint::black_box(sur.edp_gradient(&w, &feats[j]))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_surrogate);
criterion_main!(benches);
