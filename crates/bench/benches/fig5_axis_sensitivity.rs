//! Fig. 5 — mapping-axis sensitivity: explore one axis at a time via
//! Gamma's dedicated mutation operators (mutate-tile / mutate-order /
//! mutate-parallelism) while the other axes stay at their randomly
//! initialized values.
//!
//! Expected shape (paper §4.4.1): tile-only exploration dominates; order-
//! and parallelism-only trail far behind; full Gamma is best.

use bench::{budget, edp_fmt, geomean, guarded_dense, header, result_row};
use mappers::{Budget, Gamma};
use mse::Mse;

fn main() {
    let samples = budget(1_000, 5_000);
    let workloads = [
        problem::zoo::resnet_conv3(),
        problem::zoo::resnet_conv4(),
        problem::zoo::inception_conv2(),
    ];
    let arch = arch::Arch::accel_b();
    println!("Fig. 5: axis sensitivity on {} ({samples} samples per run)", arch.name());

    type Variant = (&'static str, fn() -> Gamma);
    let variants: Vec<Variant> = vec![
        ("Tile (mutate-tile only)", Gamma::tile_only),
        ("Order (mutate-order only)", Gamma::order_only),
        ("Parallelism only", Gamma::parallelism_only),
        ("Full Gamma", Gamma::new),
    ];

    let mut ratios: Vec<(String, Vec<f64>)> =
        variants.iter().map(|(n, _)| (n.to_string(), Vec::new())).collect();
    for w in &workloads {
        header(w.name());
        let model = guarded_dense(w, &arch);
        let mse = Mse::new(&model);
        let mut best_full = f64::INFINITY;
        let mut scores = Vec::new();
        for (name, make) in &variants {
            let r = mse.run(&make(), Budget::samples(samples), 5);
            println!("{}", result_row(name, &r));
            scores.push(r.best_score);
            if *name == "Full Gamma" {
                best_full = r.best_score;
            }
        }
        for (i, s) in scores.iter().enumerate() {
            ratios[i].1.push(s / best_full);
        }
    }

    header("Summary (EDP vs full Gamma, geomean over workloads; 1.0 = full Gamma)");
    for (name, rs) in &ratios {
        println!("{name:<28} {:>8.2}x", geomean(rs.iter().copied()));
    }
    println!();
    println!(
        "Expected: tile-only within a small factor of full Gamma ({}),",
        edp_fmt(1.0)
    );
    println!("order-only and parallelism-only one or more orders of magnitude worse.");
}
