//! Ablation bench for the design choices DESIGN.md calls out on the Gamma
//! implementation: population size, mutation rate, elite fraction, and
//! scalar-vs-NSGA-II selection. Not a paper figure — this validates that
//! our defaults sit in a robust region of the hyper-parameter space, so
//! the paper-facing comparisons are not artifacts of a tuned-for-us Gamma.

use bench::{budget, edp_fmt, geomean, guarded_dense, header};
use mappers::{Budget, Gamma, GammaConfig, Selection};
use mse::Mse;

fn main() {
    let samples = budget(1_000, 4_000);
    let workloads = [problem::zoo::resnet_conv3(), problem::zoo::resnet_conv4()];
    let arch = arch::Arch::accel_b();
    println!("Gamma hyper-parameter ablation ({samples} samples per run, 3 seeds)");

    let variants: Vec<(&str, GammaConfig)> = vec![
        ("default (pop 50, mut 0.6)", GammaConfig::default()),
        ("pop 20", GammaConfig { population: 20, ..GammaConfig::default() }),
        ("pop 100", GammaConfig { population: 100, ..GammaConfig::default() }),
        ("mutation 0.2", GammaConfig { mutation_rate: 0.2, ..GammaConfig::default() }),
        ("mutation 0.9", GammaConfig { mutation_rate: 0.9, ..GammaConfig::default() }),
        ("elite 10%", GammaConfig { elite_frac: 0.1, ..GammaConfig::default() }),
        ("elite 50%", GammaConfig { elite_frac: 0.5, ..GammaConfig::default() }),
        ("NSGA-II selection", GammaConfig { selection: Selection::Nsga2, ..GammaConfig::default() }),
    ];

    let mut baseline = Vec::new();
    for (name, cfg) in &variants {
        let mut per_workload = Vec::new();
        for w in &workloads {
            let model = guarded_dense(w, &arch);
            let mse = Mse::new(&model);
            let mut best = f64::INFINITY;
            for seed in 0..3 {
                let r = mse.run(
                    &Gamma::with_config(cfg.clone()),
                    Budget::samples(samples),
                    seed,
                );
                best = best.min(r.best_score);
            }
            per_workload.push(best);
        }
        if baseline.is_empty() {
            baseline = per_workload.clone();
        }
        let rel = geomean(
            per_workload.iter().zip(&baseline).map(|(v, b)| v / b),
        );
        println!(
            "{name:<28} {} / {}   ({rel:>5.2}x vs default)",
            edp_fmt(per_workload[0]),
            edp_fmt(per_workload[1])
        );
    }
    header("Interpretation");
    println!("All variants should land within a small factor of the default: the");
    println!("paper-facing results do not hinge on a fragile Gamma configuration.");
}
