//! Fig. 3 — apples-to-apples comparison of the three mapper families:
//! Random-Pruned (random-based), Gamma (feedback-based), and Mind Mappings
//! (gradient-based), on (Resnet Conv_3, Resnet Conv_4) × (Accel-A,
//! Accel-B).
//!
//! * Top of the figure: convergence over *number of samples* (iso-sample,
//!   5,000-point budget at paper scale).
//! * Bottom: convergence over *wall clock* within a tight time budget
//!   (20 s in the paper). Because our Rust cost model is ~10^3x faster than
//!   the paper's stack, we report both raw wall-clock curves and curves
//!   with each mapper's measured per-sample algorithmic overhead charged
//!   explicitly (the paper reports Gamma/Mind-Mappings overheads ~10x the
//!   Random-Pruned per-sample cost).
//!
//! Expected shape (paper §4.3): Random-Pruned is slowest per sample; Mind
//! Mappings leads early on its trained configuration (Accel-A) then stalls
//! in local optima; Gamma overtakes with more samples; on the *unseen*
//! Accel-B the gradient-based mapper loses its edge; under tight wall-clock
//! budgets Random-Pruned is competitive because its per-sample cost is
//! lowest.

use bench::{budget, checkpoints, curve, edp_fmt, full_scale, guarded_dense, header, result_row};
use costmodel::DenseModel;
use mappers::{Budget, Gamma, Mapper, RandomPruned};
use mse::Mse;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use surrogate::{MindMappings, Surrogate, TrainConfig};

fn main() {
    let samples = budget(1_200, 5_000);
    let seconds = if full_scale() { 20.0 } else { 1.0 };
    let workloads = [problem::zoo::resnet_conv3(), problem::zoo::resnet_conv4()];
    let arches = [arch::Arch::accel_a(), arch::Arch::accel_b()];

    println!("Fig. 3: mapper comparison (budget: {samples} samples / {seconds:.0} s)");
    println!("Surrogate for Mind Mappings trained on Accel-A only (as in the paper).");

    // Train one surrogate per workload on Accel-A (the paper's setup); the
    // same surrogate is reused, untrained, on Accel-B.
    let train_cfg = TrainConfig {
        samples_per_workload: budget(4_000, 20_000),
        epochs: budget(20, 40),
        ..TrainConfig::default()
    };
    let mut surrogates = Vec::new();
    for w in &workloads {
        let model_a = DenseModel::new(w.clone(), arch::Arch::accel_a());
        let mut rng = SmallRng::seed_from_u64(0xA11CE);
        let (sur, report) = Surrogate::train(&[&model_a], &train_cfg, &mut rng);
        println!(
            "  surrogate[{}]: {} examples, holdout MSE {:.4}",
            w.name(),
            report.examples,
            report.holdout_mse
        );
        surrogates.push(Arc::new(sur));
    }

    for arch_cfg in &arches {
        for (wi, w) in workloads.iter().enumerate() {
            header(&format!("{} on {}", w.name(), arch_cfg.name()));
            let model = guarded_dense(w, arch_cfg);
            let mse = Mse::new(&model);

            let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
                ("Random-Pruned", Box::new(RandomPruned::new())),
                ("Gamma", Box::new(Gamma::new())),
                ("Mind-Mappings", Box::new(MindMappings::new(surrogates[wi].clone()))),
            ];

            println!("-- iso-samples ({samples} samples) --");
            let cps = checkpoints(samples);
            let mut results = Vec::new();
            for (name, mapper) in &mappers {
                let r = mse.run(mapper.as_ref(), Budget::samples(samples), 7);
                println!("{}", result_row(name, &r));
                results.push((name.to_string(), r));
            }
            println!("convergence (best EDP at sample checkpoints):");
            print!("{:>10}", "samples");
            for (name, _) in &results {
                print!("{name:>16}");
            }
            println!();
            for (i, &cp) in cps.iter().enumerate() {
                print!("{cp:>10}");
                for (_, r) in &results {
                    let c = curve(&r.history, &cps);
                    match c.get(i) {
                        Some(&(_, v)) => print!("{:>16}", edp_fmt(v)),
                        None => print!("{:>16}", "-"),
                    }
                }
                println!();
            }

            println!("-- iso-time ({seconds} s wall clock) --");
            // Measured per-sample cost (model+algorithm) from the runs
            // above; the paper's qualitative regime (learned mappers ~10x
            // costlier per sample) is reported alongside.
            for (name, r) in &results {
                let per_sample = r.elapsed.as_secs_f64() / r.evaluated.max(1) as f64;
                println!("  {name:<16} measured per-sample cost {:.2} us", per_sample * 1e6);
            }
            for (name, mapper) in &mappers {
                let r = mse.run(mapper.as_ref(), Budget::seconds(seconds), 13);
                println!("{}", result_row(name, &r));
            }
            // Overhead-charged regime: charge each sample the paper's
            // relative cost (1 ms cost model; +10x algorithm overhead for
            // the learned mappers) and report what each mapper reaches
            // within the budget.
            let model_ms = 1.0e-3;
            println!("overhead-charged iso-time (cost model 1 ms/sample, learned mappers 10x):");
            for (name, r) in &results {
                let overhead = if name == "Random-Pruned" { 1.0 } else { 10.0 };
                let affordable = (seconds / (model_ms * overhead)) as usize;
                let reached = r
                    .history
                    .iter()
                    .take_while(|p| p.samples <= affordable.max(1))
                    .last()
                    .map(|p| p.best_score)
                    .unwrap_or(f64::INFINITY);
                println!(
                    "  {name:<16} affords {affordable:>6} samples -> best EDP {}",
                    edp_fmt(reached)
                );
            }
        }
    }
}
