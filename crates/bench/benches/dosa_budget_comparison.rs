//! DOSA budget comparison — fig3-style harness pitting the differentiable
//! one-loop mapper (`mappers::Dosa`) against the strongest mapper of each
//! other family — Gamma (feedback), Cross-Entropy (distribution fitting),
//! simulated annealing (heuristic), and the Mind-Mappings surrogate
//! (learned gradient) — at small/medium/large sample budgets.
//!
//! Expected (DOSA, PAPERS.md): direct gradient descent through the
//! analytical model dominates at *small* budgets, because smooth gradient
//! queries are free — only the projection re-costs spend evaluations — so
//! it needs far fewer exact evaluations to land near the optimum, while
//! population mappers need whole generations before selection pressure
//! does anything. With large budgets the families converge.
//!
//! Each mapper runs fresh at each budget (mappers adapt schedules to the
//! declared budget), on Accel-B, fixed seed; the surrogate is trained
//! natively on the same arch/workload so it competes at full strength.

use bench::{budget, edp_fmt, guarded_dense, header};
use costmodel::DenseModel;
use mappers::{Budget, CrossEntropy, Dosa, Gamma, Mapper, SimulatedAnnealing};
use mse::Mse;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use surrogate::{MindMappings, Surrogate, TrainConfig};

fn main() {
    let budgets = [100usize, 500, 2_000];
    let workloads = [problem::zoo::resnet_conv4(), problem::zoo::bert_kqv()];
    let arch_cfg = arch::Arch::accel_b();
    println!(
        "DOSA budget comparison on {} (budgets: {:?} samples, best of 3 seeds)",
        arch_cfg.name(),
        budgets
    );

    let train_cfg = TrainConfig {
        samples_per_workload: budget(4_000, 20_000),
        epochs: budget(20, 40),
        ..TrainConfig::default()
    };

    for w in &workloads {
        let model = guarded_dense(w, &arch_cfg);
        let mse = Mse::new(&model);

        // Native surrogate (trained on this exact arch/workload) so the
        // learned-gradient family competes at full strength.
        let dense = DenseModel::new(w.clone(), arch_cfg.clone());
        let mut rng = SmallRng::seed_from_u64(0xA11CE);
        let (sur, report) = Surrogate::train(&[&dense], &train_cfg, &mut rng);
        let sur = Arc::new(sur);

        header(&format!("{} on {}", w.name(), arch_cfg.name()));
        println!(
            "  surrogate: {} examples, holdout MSE {:.4}",
            report.examples, report.holdout_mse
        );

        let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
            ("DOSA", Box::new(Dosa::new())),
            ("Gamma", Box::new(Gamma::new())),
            ("Cross-Entropy", Box::new(CrossEntropy::new())),
            ("Annealing", Box::new(SimulatedAnnealing::new())),
            ("Mind-Mappings", Box::new(MindMappings::new(sur.clone()))),
        ];

        print!("{:>16}", "mapper");
        for b in budgets {
            print!("{b:>14}");
        }
        println!();
        for (name, mapper) in &mappers {
            print!("{name:>16}");
            for b in budgets {
                let best = (0..3u64)
                    .map(|seed| mse.run(mapper.as_ref(), Budget::samples(b), seed).best_score)
                    .fold(f64::INFINITY, f64::min);
                print!("{:>14}", edp_fmt(best));
            }
            println!();
        }
    }
}
