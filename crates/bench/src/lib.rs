//! Shared machinery for the experiment harnesses that regenerate the
//! paper's tables and figures (`cargo bench --workspace`).
//!
//! Every harness honors the `MSE_FULL=1` environment variable: by default
//! budgets are scaled down so the whole suite finishes in minutes; with
//! `MSE_FULL=1` the paper-scale budgets (e.g. 5,000 samples per mapper run,
//! Fig. 3) are used.

use arch::{Arch, SparseCaps};
use costmodel::{
    Cost, CostModel, DenseModel, GuardConfig, GuardPolicy, GuardedModel, SparseModel,
};
use mappers::{ConvergencePoint, Evaluator, SearchResult};
use mapping::Mapping;
use problem::{Density, Problem};

/// Whether paper-scale budgets were requested.
pub fn full_scale() -> bool {
    std::env::var("MSE_FULL").is_ok_and(|v| v == "1")
}

/// Dense analytical model wrapped in Reject-policy invariant guarding.
/// Figure regeneration runs guarded (EXPERIMENTS.md): a corrupted
/// evaluation quarantines the mapping instead of silently skewing a table.
pub fn guarded_dense(p: &Problem, a: &Arch) -> GuardedModel<DenseModel> {
    GuardedModel::dense(DenseModel::new(p.clone(), a.clone()), GuardPolicy::Reject)
}

/// Boxed [`guarded_dense`] for harnesses that take model factories.
pub fn guarded_dense_box(p: &Problem, a: &Arch) -> Box<dyn CostModel> {
    Box::new(guarded_dense(p, a))
}

/// Sparse counterpart of [`guarded_dense`], with density-aware guard
/// floors matching the model's compression provisioning.
pub fn guarded_sparse(
    p: &Problem,
    a: &Arch,
    caps: SparseCaps,
    d: Density,
) -> GuardedModel<SparseModel> {
    GuardedModel::new(
        SparseModel::new(p.clone(), a.clone(), caps, d),
        GuardConfig::sparse(GuardPolicy::Reject, &caps, d),
    )
}

/// Picks the sample budget: `full` under `MSE_FULL=1`, else `quick`.
pub fn budget(quick: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Formats an EDP the way the paper's tables do (e.g. `3.1E10`).
pub fn edp_fmt(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    format!("{v:.1E}")
}

/// Downsamples a convergence history onto (roughly) log-spaced sample
/// checkpoints so curves print compactly. Returns `(samples, best)` rows.
pub fn curve(history: &[ConvergencePoint], checkpoints: &[usize]) -> Vec<(usize, f64)> {
    checkpoints
        .iter()
        .filter_map(|&cp| {
            history
                .iter()
                .take_while(|p| p.samples <= cp)
                .last()
                .map(|p| (cp, p.best_score))
        })
        .collect()
}

/// Log-spaced checkpoints up to `max`.
pub fn checkpoints(max: usize) -> Vec<usize> {
    let mut out = vec![];
    let mut v = 50usize;
    while v < max {
        out.push(v);
        v = (v as f64 * 1.8) as usize;
    }
    out.push(max);
    out
}

/// Evaluator wrapper that pins every candidate's *innermost-level* loop
/// order before evaluation and restricts the search to mappings whose
/// datapath style classifies as intended — how the Table 3 harness fixes a
/// mapping to inner- or outer-product style while the mapper explores
/// tiles, parallelism, and the outer orchestration orders ("we fix the
/// loop order and perform MSE for the other two axes", §4.5.3). The style
/// check matters: without it a search could park the reduction factor at 1
/// in the pinned level and escape to the other style through a searchable
/// outer order.
pub struct ForcedOrderEvaluator<'a, E> {
    inner: &'a E,
    order: Vec<usize>,
    style: Option<(problem::Problem, costmodel::style::ProductStyle)>,
}

impl<'a, E: Evaluator> ForcedOrderEvaluator<'a, E> {
    /// Wraps `inner`, forcing `order` at the innermost storage level.
    pub fn new(inner: &'a E, order: Vec<usize>) -> Self {
        ForcedOrderEvaluator { inner, order, style: None }
    }

    /// Additionally guarantee candidates classify as `style` (candidates
    /// that escape the style through their searchable outer orders are
    /// projected by pinning every level instead of being wasted).
    pub fn with_style(
        inner: &'a E,
        order: Vec<usize>,
        problem: problem::Problem,
        style: costmodel::style::ProductStyle,
    ) -> Self {
        ForcedOrderEvaluator { inner, order, style: Some((problem, style)) }
    }
}

impl<E: Evaluator> Evaluator for ForcedOrderEvaluator<'_, E> {
    fn evaluate(&self, m: &Mapping) -> Option<(Cost, f64)> {
        let mut forced = m.clone();
        let innermost = forced.num_levels() - 1;
        costmodel::style::force_order_at_level(&mut forced, innermost, &self.order);
        if let Some((p, style)) = &self.style {
            if costmodel::style::classify(p, &forced) != *style {
                costmodel::style::force_order(&mut forced, &self.order);
            }
        }
        self.inner.evaluate(&forced)
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (sum / n as f64).exp()
}

/// Summarizes one search result as a single printable row.
pub fn result_row(name: &str, r: &SearchResult) -> String {
    format!(
        "{name:<22} best EDP {:>10}  samples {:>6}  wall {:>8.3}s",
        edp_fmt(r.best_score),
        r.evaluated,
        r.elapsed.as_secs_f64()
    )
}

/// Convenience: the EDP of a mapping on a model, `inf` if illegal.
pub fn edp_of(model: &dyn CostModel, m: &Mapping) -> f64 {
    model.evaluate(m).map(|c| c.edp()).unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_are_increasing_and_end_at_max() {
        let c = checkpoints(5000);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*c.last().unwrap(), 5000);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean([4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn edp_format_matches_paper_style() {
        assert_eq!(edp_fmt(3.1e10), "3.1E10");
        assert_eq!(edp_fmt(f64::INFINITY), "inf");
    }

    #[test]
    fn curve_takes_best_so_far_at_each_checkpoint() {
        let h = vec![
            ConvergencePoint { samples: 1, seconds: 0.0, best_score: 100.0 },
            ConvergencePoint { samples: 60, seconds: 0.0, best_score: 10.0 },
            ConvergencePoint { samples: 300, seconds: 0.0, best_score: 1.0 },
        ];
        let c = curve(&h, &[50, 100, 400]);
        assert_eq!(c, vec![(50, 100.0), (100, 10.0), (400, 1.0)]);
    }
}
