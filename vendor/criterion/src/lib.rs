//! Offline stand-in for the parts of `criterion` the microbenches use.
//!
//! The build environment is fully offline (see DESIGN.md §5), so this
//! crate provides the same macro/type surface — [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a simple median-of-batches timer
//! instead of criterion's full statistical machinery. Good enough to spot
//! order-of-magnitude regressions from `cargo bench`; not a substitute
//! for rigorous statistics.

use std::time::{Duration, Instant};

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed batches.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up duration before measuring.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints a `name: median time/iter` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Opens a named benchmark group (subset of
    /// `criterion::Criterion::benchmark_group`). The group starts from this
    /// driver's configuration; its setters override per-group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }
}

/// Named group of benchmarks sharing a configuration (subset of
/// `criterion::BenchmarkGroup`). Benchmark lines print as `group/name`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed batches.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up duration before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints a `group/name: median time/iter` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Ends the group (no-op; present for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    // Warm-up: run the closure untimed until the warm-up budget is spent.
    let warm_start = Instant::now();
    let mut iters_per_batch = 1u64;
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher { iters: iters_per_batch, elapsed: Duration::ZERO };
        f(&mut b);
        // Grow the batch until one batch takes ~1/sample_size of the
        // measurement budget, so batches are long enough to time.
        if b.elapsed * (sample_size as u32) < measurement_time {
            iters_per_batch = iters_per_batch.saturating_mul(2);
        }
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    let run_start = Instant::now();
    for _ in 0..sample_size {
        if run_start.elapsed() > measurement_time {
            break;
        }
        let mut b = Bencher { iters: iters_per_batch, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters_per_batch as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(f64::NAN);
    println!("{name:<40} {} /iter ({} batches x {iters_per_batch} iters)",
        format_time(median), per_iter.len());
}

fn format_time(secs: f64) -> String {
    if !secs.is_finite() {
        "n/a".to_string()
    } else if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-batch timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $( $target(&mut { $cfg }); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn format_time_picks_units() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2e-3), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 us");
        assert_eq!(format_time(2e-9), "2.0 ns");
        assert_eq!(format_time(f64::NAN), "n/a");
    }

    #[test]
    fn benchmark_group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("macro_path", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(group_default, sample_bench);
    criterion_group! {
        name = group_cfg;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        targets = sample_bench
    }

    // criterion_main! expands to `fn main`; compile-check it in a nested
    // module where the extra `main` is inert.
    #[allow(dead_code)]
    mod main_macro {
        criterion_main!(super::group_cfg);
    }

    #[test]
    fn group_macros_run() {
        group_cfg();
        let _ = group_default as fn();
    }
}
