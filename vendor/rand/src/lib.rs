//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! every external dependency must live in-tree (see DESIGN.md §5). This
//! crate reimplements the exact API surface the workspace consumes —
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! sampling methods (`gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`] — with the same module paths, so source
//! files keep their `use rand::...` imports unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the same
//! algorithm family `rand 0.8` uses for `SmallRng` on 64-bit targets.
//! Streams are deterministic given a seed, which is all the workspace
//! relies on (explicit seeds everywhere; no test pins exact draw values).

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as rand_core does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Uniform-distribution plumbing (subset of `rand::distributions`).
pub mod distributions {
    /// Range sampling (subset of `rand::distributions::uniform`).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
        }

        macro_rules! uniform_int {
            ($($t:ty => $u:ty),* $(,)?) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as $u).wrapping_sub(self.start as $u);
                        let off = sample_below(rng, span as u64) as $u;
                        (self.start as $u).wrapping_add(off) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as $u).wrapping_sub(lo as $u);
                        if span as u64 == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        let off = sample_below(rng, span as u64 + 1) as $u;
                        (lo as $u).wrapping_add(off) as $t
                    }
                }
            )*};
        }

        uniform_int!(
            u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
            i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
        );

        /// Uniform integer in `[0, n)` via 128-bit multiply-shift (Lemire
        /// without the rejection pass; the ≤ 2⁻⁶⁴·n bias is irrelevant for
        /// search stochasticity).
        fn sample_below<G: RngCore + ?Sized>(rng: &mut G, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((rng.next_u64() as u128 * n as u128) >> 64) as u64
        }

        macro_rules! uniform_float {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        let v = self.start + (self.end - self.start) * u;
                        // Guard against rounding up to the excluded bound.
                        if v >= self.end { self.start } else { v }
                    }
                }
            )*};
        }

        uniform_float!(f32, f64);
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: u64 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let z: i32 = rng.gen_range(-4..8);
            assert!((-4..8).contains(&z));
            let f: f64 = rng.gen_range(-0.01..0.01);
            assert!((-0.01..0.01).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 produced {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
