//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Same motivation as the in-tree `rand` shim: the build environment is
//! fully offline, so the property-test surface the workspace consumes is
//! reimplemented here behind the identical module paths — the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary::any`], and [`test_runner::ProptestConfig`].
//!
//! Semantics are simplified but honest: each property runs for
//! `ProptestConfig::cases` deterministic cases (seeded from the property
//! name, so failures reproduce run-to-run); there is no shrinking — the
//! failing case's message is reported directly.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategies: how to generate values of a type.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A value generator (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn new_value(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/a);
    tuple_strategy!(A/a, B/b);
    tuple_strategy!(A/a, B/b, C/c);
    tuple_strategy!(A/a, B/b, C/c, D/d);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

/// `any::<T>()` support (subset of `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of deterministic cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The glob-import surface property tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Deterministic per-property RNG: seeded from the property name so a
/// failure reproduces on every run without recording a seed file.
pub fn rng_for(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Declares deterministic property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $( let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng); )+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __msg,
                    );
                }
            }
        }
    )*};
}

/// Property assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($a), stringify!($b), __a, __b,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_for_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_any_compose(n in 1u64..100, k in 1usize..5, seed in any::<u64>()) {
            prop_assert!((1..100).contains(&n));
            prop_assert!((1..5).contains(&k));
            // seed spans the full u64 range; just consume it.
            prop_assert_eq!(seed, seed);
        }

        #[test]
        fn prop_map_applies(v in (1u64..4, 1u64..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&v));
        }
    }
}
