//! Map every (unique) ResNet-50 layer onto Accel-B with warm-start MSE and
//! print a per-layer mapping report — the "deploy a whole network" flow a
//! compiler would run (§5.1's motivating use case).
//!
//! ```sh
//! cargo run --release -p mapex-examples --bin resnet_sweep
//! ```

use arch::Arch;
use costmodel::DenseModel;
use mappers::{Budget, Gamma};
use mse::{run_network, InitStrategy, ReplayBuffer};

fn main() {
    let arch = Arch::accel_b();
    let layers = problem::zoo::resnet50();
    let buffer = ReplayBuffer::new();
    println!("mapping {} unique ResNet-50 layers onto {}", layers.len(), arch.name());

    let outcomes = run_network(
        &layers,
        &arch,
        &buffer,
        InitStrategy::BySimilarity,
        Budget::samples(1_500),
        0,
        |p| Box::new(DenseModel::new(p.clone(), arch.clone())),
        || Box::new(Gamma::new()),
    );

    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "layer", "EDP", "latency", "energy(uJ)", "converged@"
    );
    let mut total_latency = 0.0;
    let mut total_energy = 0.0;
    for o in &outcomes {
        let (_, cost) = o.result.best.as_ref().expect("search always finds a mapping");
        println!(
            "{:<22} {:>12.3e} {:>12.3e} {:>12.3e} {:>10}",
            o.name,
            cost.edp(),
            cost.latency_cycles,
            cost.energy_uj,
            o.converge_sample
        );
        total_latency += cost.latency_cycles;
        total_energy += cost.energy_uj;
    }
    println!();
    println!(
        "network totals (layer-serial): {total_latency:.3e} cycles, {total_energy:.3e} uJ"
    );
    println!("replay buffer now holds {} optimized mappings", buffer.len());
}
