//! Hardware design-space exploration on top of MSE (§1/§3: "MSE may be run
//! ... at design-time in conjunction with DSE for co-optimizing the mapping
//! and HW configuration"). This example sweeps the global-buffer size and
//! the PE count of an Accel-B-like design, runs MSE for each candidate
//! configuration, and reports the best mapping's EDP per configuration —
//! the inner loop any DSE tool (HASCO, DiGamma, ...) would drive.
//!
//! ```sh
//! cargo run --release -p mapex-examples --bin dse_sweep
//! ```

use arch::{Arch, MemLevel};
use costmodel::DenseModel;
use mappers::{Budget, Gamma};
use mse::Mse;

fn candidate(global_kb: u64, pes: u64) -> Arch {
    let word = 2u64;
    // Per-access energy grows roughly with the square root of capacity.
    let gb_energy = 0.75 * ((global_kb * 1024 / word) as f64).sqrt() / 19.0;
    Arch::new(
        format!("GB{global_kb}KB-PE{pes}"),
        vec![
            MemLevel::new("DRAM", None, 1, 200.0, 16.0),
            MemLevel::new("GlobalBuffer", Some(global_kb * 1024 / word), pes, gb_energy, 64.0),
            MemLevel::new("LocalBuffer", Some(256 / word), 4, 0.6, 4.0),
        ],
        1.0,
        word,
    )
    .expect("valid candidate")
}

fn main() {
    let workload = problem::zoo::resnet_conv4();
    println!("DSE sweep for {workload}");
    println!();
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "config", "lanes", "best EDP", "latency", "energy(uJ)", "util"
    );

    let mut best: Option<(String, f64)> = None;
    for global_kb in [32u64, 64, 128, 256] {
        for pes in [64u64, 256, 1024] {
            let arch = candidate(global_kb, pes);
            let model = DenseModel::new(workload.clone(), arch.clone());
            let mse = Mse::new(&model);
            let r = mse.run(&Gamma::new(), Budget::samples(1_500), 7);
            let Some((mapping, cost)) = r.best else {
                println!("{:<16} {:>10} {:>12}", arch.name(), pes * 4, "unmappable");
                continue;
            };
            let b = costmodel::CostModel::evaluate_detailed(&model, &mapping)
                .expect("best is legal");
            println!(
                "{:<16} {:>10} {:>12.3e} {:>12.3e} {:>12.3e} {:>7.1}%",
                arch.name(),
                pes * 4,
                cost.edp(),
                cost.latency_cycles,
                cost.energy_uj,
                100.0 * b.utilization(&arch)
            );
            if best.as_ref().is_none_or(|(_, e)| cost.edp() < *e) {
                best = Some((arch.name().to_string(), cost.edp()));
            }
        }
    }
    let (name, edp) = best.expect("at least one config mapped");
    println!();
    println!("best configuration: {name} (EDP {edp:.3e} cycles*uJ)");
    println!("note: larger arrays only help if MSE finds mappings that feed them —");
    println!("which is exactly why DSE must run MSE in its inner loop (§3).");
}
