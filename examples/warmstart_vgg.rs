//! Warm-start walkthrough on VGG16 (§5.1): run the full network twice —
//! random init vs warm-start by similarity — and compare final quality and
//! convergence speed per layer.
//!
//! ```sh
//! cargo run --release -p mapex-examples --bin warmstart_vgg
//! ```

use arch::Arch;
use costmodel::DenseModel;
use mappers::{Budget, Gamma};
use mse::{run_network, samples_to_reach, InitStrategy, LayerOutcome, ReplayBuffer};

fn run(strategy: InitStrategy) -> Vec<LayerOutcome> {
    let arch = Arch::accel_b();
    let layers = problem::zoo::vgg16();
    let buffer = ReplayBuffer::new();
    run_network(
        &layers,
        &arch,
        &buffer,
        strategy,
        Budget::samples(1_200),
        7,
        |p| Box::new(DenseModel::new(p.clone(), arch.clone())),
        || Box::new(Gamma::new()),
    )
}

fn main() {
    println!("VGG16 on Accel-B: random init vs warm-start by similarity");
    let cold = run(InitStrategy::Random);
    let warm = run(InitStrategy::BySimilarity);

    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>11} {:>11}",
        "layer", "cold EDP", "warm EDP", "cold conv@", "warm conv@"
    );
    let mut speedups = Vec::new();
    for (c, w) in cold.iter().zip(&warm) {
        println!(
            "{:<16} {:>12.3e} {:>12.3e} {:>11} {:>11}",
            c.name, c.result.best_score, w.result.best_score, c.converge_sample, w.converge_sample
        );
        if c.name != cold[0].name {
            let target = 1.005 * c.result.best_score.max(w.result.best_score);
            let cs = samples_to_reach(&c.result, target).unwrap_or(c.result.evaluated);
            let ws = samples_to_reach(&w.result, target).unwrap_or(w.result.evaluated);
            speedups.push(cs as f64 / ws.max(1) as f64);
        }
    }
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!();
    println!("geomean convergence speedup from warm-start (layers 2+): {geo:.1}x");
    println!("(the paper reports 3.3x-7.3x across its four networks)");
}
