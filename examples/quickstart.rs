//! Quickstart: map one ResNet layer onto the paper's Accel-B and print the
//! optimized loop nest and its cost.
//!
//! ```sh
//! cargo run --release -p mapex-examples --bin quickstart
//! ```

use costmodel::{CostModel, DenseModel};
use mappers::{Budget, Gamma};
use mse::Mse;

fn main() {
    // 1. Pick a workload (Table 1's Resnet Conv_4) and an accelerator.
    let workload = problem::zoo::resnet_conv4();
    let accel = arch::Arch::accel_b();
    println!("workload: {workload}");
    println!("{accel}");

    // 2. Bind the analytical cost model and run the Gamma mapper.
    let model = DenseModel::new(workload.clone(), accel.clone());
    let mse = Mse::new(&model);
    let result = mse.run(&Gamma::new(), Budget::samples(2_000), 42);

    // 3. Inspect the result.
    let (best, cost) = result.best.expect("the map space is never empty");
    println!("evaluated {} mappings in {:.2?}", result.evaluated, result.elapsed);
    println!("best cost: {cost}");
    println!("Pareto frontier holds {} (latency, energy) points", result.pareto.len());
    println!();
    println!("optimized mapping (outermost level first):");
    print!("{best}");

    // 4. The detailed breakdown shows where the traffic goes.
    let b = model.evaluate_detailed(&best).expect("best mapping is legal");
    println!();
    println!("per-level traffic (words):");
    for (i, t) in b.per_level.iter().enumerate() {
        println!(
            "  L{i} {:<13} reads {:>12.3e}  writes {:>12.3e}",
            accel.level(i).name,
            t.reads,
            t.writes
        );
    }
    println!("compute: {:.3e} MACs on {} lanes", b.macs, b.lanes);
}
