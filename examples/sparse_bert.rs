//! Sparse BERT deployment: choose inner- vs outer-product dataflow per
//! weight-density level for the BERT-large GEMMs on a flexible sparse
//! accelerator, and find one sparsity-aware mapping for dynamic activation
//! sparsity (§4.5 + §5.2 in one flow).
//!
//! ```sh
//! cargo run --release -p mapex-examples --bin sparse_bert
//! ```

use arch::SparseCaps;
use costmodel::style::{classify, order_reduction_innermost, order_reduction_outermost};
use costmodel::SparseModel;
use mappers::{Budget, EdpEvaluator, Evaluator, Gamma, GammaConfig};
use mse::{density_sweep, Mse, SparsityAwareEvaluator, DEFAULT_SEARCH_DENSITIES};
use mapping::Mapping;
use problem::Density;

/// Pins a loop order during search (see §4.5.3: style is an order property).
struct Pinned<'a> {
    inner: EdpEvaluator<'a>,
    order: Vec<usize>,
}

impl Evaluator for Pinned<'_> {
    fn evaluate(&self, m: &Mapping) -> Option<(costmodel::Cost, f64)> {
        let mut forced = m.clone();
        let innermost = forced.num_levels() - 1;
        costmodel::style::force_order_at_level(&mut forced, innermost, &self.order);
        self.inner.evaluate(&forced)
    }
}

fn main() {
    let caps = SparseCaps::flexible();
    let arch = arch::Arch::accel_b();
    let workload = problem::zoo::bert_kqv();
    println!("workload: {workload}");

    println!();
    println!("--- style selection per weight density (Table 3 flow) ---");
    println!("{:>8} {:>14} {:>14} {:>10}", "density", "inner EDP", "outer EDP", "winner");
    for dw in [1.0, 0.5, 0.1, 0.01] {
        let model = SparseModel::new(
            workload.clone(),
            arch.clone(),
            caps,
            Density::weight_sparse(dw),
        );
        let mse = Mse::new(&model);
        let gamma = Gamma::with_config(GammaConfig::default());
        let mut scores = Vec::new();
        for order in
            [order_reduction_innermost(&workload), order_reduction_outermost(&workload)]
        {
            let eval = Pinned { inner: EdpEvaluator::new(&model), order };
            let r = mse.run_with_evaluator(&gamma, &eval, Budget::samples(1_000), 1);
            scores.push(r.best_score);
        }
        let winner = if scores[0] <= scores[1] { "inner" } else { "outer" };
        println!("{dw:>8} {:>14.3e} {:>14.3e} {winner:>10}", scores[0], scores[1]);
    }

    println!();
    println!("--- one mapping for dynamic activation sparsity (§5.2 flow) ---");
    let model = SparseModel::new(workload.clone(), arch.clone(), caps, Density::DENSE);
    let mse = Mse::new(&model);
    let aware = SparsityAwareEvaluator::new(
        workload.clone(),
        arch.clone(),
        caps,
        &DEFAULT_SEARCH_DENSITIES,
    );
    let r = mse.run_with_evaluator(&Gamma::new(), &aware, Budget::samples(2_000), 2);
    let best = r.best.expect("found a mapping").0;
    println!(
        "found one fixed {:?}-style mapping; EDP across activation densities:",
        classify(&workload, &best)
    );
    for (d, edp) in density_sweep(&workload, &arch, caps, &best, &[1.0, 0.5, 0.2, 0.1, 0.05]) {
        println!("  density {d:>5}: {edp:.3e} cycles*uJ");
    }
}
